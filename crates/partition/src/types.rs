//! The [`Partition`] type: ownership + replication layout of a bigraph.

use hetgmp_bigraph::{Bigraph, EmbId, SampleId};

/// Maximum supported partition count (replica sets are stored as `u64`
/// bitmasks; the paper's largest cluster is 24 GPUs).
pub const MAX_PARTITIONS: usize = 64;

/// A complete data/model placement:
///
/// * every **sample vertex** is owned by exactly one partition (the worker
///   that trains on it);
/// * every **embedding vertex** has exactly one **primary** partition (the
///   authoritative copy, always up to date — paper §5.2/Figure 6);
/// * an embedding may additionally have **secondary** replicas on other
///   partitions (created by vertex-cut), tracked in a per-embedding bitmask.
#[derive(Debug, Clone)]
pub struct Partition {
    num_partitions: usize,
    sample_owner: Vec<u32>,
    emb_primary: Vec<u32>,
    /// Bit `k` set ⇒ a replica (primary or secondary) lives on partition `k`.
    replica_mask: Vec<u64>,
}

impl Partition {
    /// Creates a partition layout from explicit assignments, with no
    /// secondaries.
    ///
    /// # Panics
    /// Panics if `num_partitions` is 0 or exceeds [`MAX_PARTITIONS`], or if
    /// any assignment is out of range.
    pub fn new(num_partitions: usize, sample_owner: Vec<u32>, emb_primary: Vec<u32>) -> Self {
        assert!(
            (1..=MAX_PARTITIONS).contains(&num_partitions),
            "num_partitions {num_partitions} out of range"
        );
        assert!(
            sample_owner.iter().all(|&p| (p as usize) < num_partitions),
            "sample owner out of range"
        );
        assert!(
            emb_primary.iter().all(|&p| (p as usize) < num_partitions),
            "embedding primary out of range"
        );
        let replica_mask = emb_primary.iter().map(|&p| 1u64 << p).collect();
        Self {
            num_partitions,
            sample_owner,
            emb_primary,
            replica_mask,
        }
    }

    /// Number of partitions (workers).
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of sample vertices.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.sample_owner.len()
    }

    /// Number of embedding vertices.
    #[inline]
    pub fn num_embeddings(&self) -> usize {
        self.emb_primary.len()
    }

    /// The partition that owns sample `s`.
    #[inline]
    pub fn sample_owner(&self, s: SampleId) -> u32 {
        self.sample_owner[s as usize]
    }

    /// The primary partition of embedding `e`.
    #[inline]
    pub fn primary_of(&self, e: EmbId) -> u32 {
        self.emb_primary[e as usize]
    }

    /// True when embedding `e` has any replica (primary or secondary) on
    /// partition `k` — i.e. worker `k` can read it locally.
    #[inline]
    pub fn is_local(&self, e: EmbId, k: u32) -> bool {
        self.replica_mask[e as usize] & (1u64 << k) != 0
    }

    /// True when partition `k` holds a *secondary* replica of `e`.
    #[inline]
    pub fn is_secondary(&self, e: EmbId, k: u32) -> bool {
        self.is_local(e, k) && self.emb_primary[e as usize] != k
    }

    /// Adds a secondary replica of `e` on partition `k` (idempotent).
    pub fn add_replica(&mut self, e: EmbId, k: u32) {
        debug_assert!((k as usize) < self.num_partitions);
        self.replica_mask[e as usize] |= 1u64 << k;
    }

    /// Moves the primary of embedding `e` to partition `k`, updating masks.
    /// Any existing secondaries are preserved.
    pub fn move_primary(&mut self, e: EmbId, k: u32) {
        debug_assert!((k as usize) < self.num_partitions);
        let old = self.emb_primary[e as usize];
        self.replica_mask[e as usize] &= !(1u64 << old);
        self.replica_mask[e as usize] |= 1u64 << k;
        self.emb_primary[e as usize] = k;
    }

    /// Moves sample `s` to partition `k`.
    pub fn move_sample(&mut self, s: SampleId, k: u32) {
        debug_assert!((k as usize) < self.num_partitions);
        self.sample_owner[s as usize] = k;
    }

    /// All partitions holding a replica of `e` (primary included).
    pub fn replicas_of(&self, e: EmbId) -> impl Iterator<Item = u32> + '_ {
        let mask = self.replica_mask[e as usize];
        (0..self.num_partitions as u32).filter(move |k| mask & (1u64 << k) != 0)
    }

    /// Number of replicas of `e` (≥ 1).
    #[inline]
    pub fn replica_count(&self, e: EmbId) -> u32 {
        self.replica_mask[e as usize].count_ones()
    }

    /// Sample counts per partition.
    pub fn samples_per_partition(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for &p in &self.sample_owner {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Primary-embedding counts per partition.
    pub fn primaries_per_partition(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for &p in &self.emb_primary {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Total replica slots (primaries + secondaries) per partition — the
    /// GPU-memory footprint of each worker's local embedding table.
    pub fn replicas_per_partition(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for &mask in &self.replica_mask {
            let mut m = mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                counts[k] += 1;
                m &= m - 1;
            }
        }
        counts
    }

    /// Average replicas per embedding (1.0 = no vertex-cut).
    pub fn replication_factor(&self) -> f64 {
        if self.emb_primary.is_empty() {
            return 1.0;
        }
        let total: u64 = self.replica_mask.iter().map(|m| m.count_ones() as u64).sum();
        total as f64 / self.emb_primary.len() as f64
    }

    /// The sample ids owned by each partition (the worker's local shard of
    /// the training set).
    pub fn samples_by_partition(&self) -> Vec<Vec<SampleId>> {
        let mut out = vec![Vec::new(); self.num_partitions];
        for (s, &p) in self.sample_owner.iter().enumerate() {
            out[p as usize].push(s as SampleId);
        }
        out
    }

    /// Validates internal consistency against a bigraph's dimensions.
    pub fn validate(&self, g: &Bigraph) -> Result<(), String> {
        if self.sample_owner.len() != g.num_samples() {
            return Err(format!(
                "sample count mismatch: partition {} vs graph {}",
                self.sample_owner.len(),
                g.num_samples()
            ));
        }
        if self.emb_primary.len() != g.num_embeddings() {
            return Err(format!(
                "embedding count mismatch: partition {} vs graph {}",
                self.emb_primary.len(),
                g.num_embeddings()
            ));
        }
        for (e, (&p, &mask)) in self.emb_primary.iter().zip(&self.replica_mask).enumerate() {
            if mask & (1u64 << p) == 0 {
                return Err(format!("embedding {e}: primary {p} missing from mask"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Partition {
        Partition::new(3, vec![0, 1, 2, 0], vec![0, 1, 2, 2])
    }

    #[test]
    fn construction_and_queries() {
        let p = toy();
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.num_samples(), 4);
        assert_eq!(p.num_embeddings(), 4);
        assert_eq!(p.sample_owner(3), 0);
        assert_eq!(p.primary_of(3), 2);
        assert!(p.is_local(0, 0));
        assert!(!p.is_local(0, 1));
        assert!(!p.is_secondary(0, 0)); // primary is not a secondary
    }

    #[test]
    fn add_replica_and_queries() {
        let mut p = toy();
        p.add_replica(0, 2);
        assert!(p.is_local(0, 2));
        assert!(p.is_secondary(0, 2));
        assert_eq!(p.replica_count(0), 2);
        let reps: Vec<u32> = p.replicas_of(0).collect();
        assert_eq!(reps, vec![0, 2]);
        // idempotent
        p.add_replica(0, 2);
        assert_eq!(p.replica_count(0), 2);
    }

    #[test]
    fn move_primary_updates_mask() {
        let mut p = toy();
        p.add_replica(0, 1);
        p.move_primary(0, 1);
        assert_eq!(p.primary_of(0), 1);
        assert!(!p.is_local(0, 0));
        assert!(p.is_local(0, 1));
        assert!(!p.is_secondary(0, 1));
    }

    #[test]
    fn per_partition_counts() {
        let mut p = toy();
        assert_eq!(p.samples_per_partition(), vec![2, 1, 1]);
        assert_eq!(p.primaries_per_partition(), vec![1, 1, 2]);
        p.add_replica(0, 1);
        assert_eq!(p.replicas_per_partition(), vec![1, 2, 2]);
        assert!((p.replication_factor() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn samples_by_partition_covers_all() {
        let p = toy();
        let by = p.samples_by_partition();
        assert_eq!(by[0], vec![0, 3]);
        assert_eq!(by[1], vec![1]);
        assert_eq!(by[2], vec![2]);
    }

    #[test]
    fn validate_against_graph() {
        let g = Bigraph::from_samples(4, &[vec![0], vec![1], vec![2], vec![3]]);
        assert!(toy().validate(&g).is_ok());
        let small = Bigraph::from_samples(4, &[vec![0]]);
        assert!(toy().validate(&small).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_owner() {
        Partition::new(2, vec![0, 5], vec![0]);
    }

    #[test]
    #[should_panic(expected = "num_partitions")]
    fn rejects_zero_partitions() {
        Partition::new(0, vec![], vec![]);
    }
}
