//! 2D vertex-cut replication — Step 2 of Algorithm 1 (paper §5.2, Eq. 6).
//!
//! After 1D partitioning, high-degree ("hot") embeddings still force remote
//! fetches from every partition that uses them. Vertex-cut replicates such
//! embeddings as **secondary** replicas on the partitions that access them
//! most, trading GPU memory for locality. The greedy priority for
//! replicating `x` onto partition `i` is Eq. 6:
//!
//! ```text
//! δp(x, G_i) = count(x, i) / Σ_{v ∉ G_i} count(v, i)
//! ```
//!
//! For a fixed partition the denominator is common to all candidates, so the
//! greedy order is simply descending `count(x, i)` — replicate the
//! embeddings this worker reads remotely most often until the memory budget
//! is exhausted. The paper's experiments budget "top 1% embeddings as
//! secondaries".

use hetgmp_bigraph::Bigraph;

use crate::types::Partition;

/// How much replica capacity each worker gets.
#[derive(Debug, Clone, Copy)]
pub enum ReplicationBudget {
    /// Each partition may hold secondaries for up to this fraction of the
    /// total embedding count (the paper uses 0.01).
    FractionOfEmbeddings(f64),
    /// Each partition may hold at most this many secondaries.
    PerPartitionSlots(usize),
}

impl ReplicationBudget {
    /// The per-partition secondary slot count this budget grants for a table
    /// of `num_embeddings` rows.
    pub fn slots(&self, num_embeddings: usize) -> usize {
        match *self {
            ReplicationBudget::FractionOfEmbeddings(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction out of range: {f}");
                (num_embeddings as f64 * f).floor() as usize
            }
            ReplicationBudget::PerPartitionSlots(s) => s,
        }
    }
}

/// Runs greedy vertex-cut replication, adding secondaries to `part` in
/// place. Returns the number of secondary replicas created. Candidate
/// scanning runs on one thread per available core; see
/// [`replicate_hot_embeddings_threaded`].
pub fn replicate_hot_embeddings(
    g: &Bigraph,
    part: &mut Partition,
    budget: ReplicationBudget,
) -> usize {
    replicate_hot_embeddings_threaded(g, part, budget, 0)
}

/// [`replicate_hot_embeddings`] with an explicit scan-thread count (`0` =
/// one per available core).
///
/// Each partition's candidate scan — collect its remotely-accessed
/// embeddings, rank by `count(x, i)` descending with id tie-break — reads
/// only the frozen access counts and the pre-replication partition, so the
/// scans fan out across threads; the winning replica sets are then applied
/// sequentially in partition order. The result is identical for every
/// thread count.
pub fn replicate_hot_embeddings_threaded(
    g: &Bigraph,
    part: &mut Partition,
    budget: ReplicationBudget,
    score_threads: usize,
) -> usize {
    let n = part.num_partitions();
    let slots = budget.slots(g.num_embeddings());
    if slots == 0 {
        return 0;
    }

    // count(x, i) for all embeddings × partitions.
    let mut counts = vec![0u32; g.num_embeddings() * n];
    for s in 0..g.num_samples() as u32 {
        let i = part.sample_owner(s) as usize;
        for &x in g.embeddings_of(s) {
            counts[x as usize * n + i] += 1;
        }
    }

    // Candidates for partition i: embeddings not local to i with a positive
    // access count, ranked by count(x, i) descending (ties by id for
    // determinism), truncated to the slot budget.
    let scan = |i: u32| -> Vec<u32> {
        let mut candidates: Vec<(u32, u32)> = (0..g.num_embeddings() as u32)
            .filter(|&x| !part.is_local(x, i))
            .map(|x| (counts[x as usize * n + i as usize], x))
            .filter(|&(c, _)| c > 0)
            .collect();
        candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        candidates.iter().take(slots).map(|&(_, x)| x).collect()
    };
    let threads = crate::onedee::resolve_threads(score_threads).min(n.max(1));
    let mut winners: Vec<Vec<u32>> = vec![Vec::new(); n];
    if threads <= 1 {
        for (i, w) in winners.iter_mut().enumerate() {
            *w = scan(i as u32);
        }
    } else {
        let per = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, chunk) in winners.chunks_mut(per).enumerate() {
                let scan = &scan;
                scope.spawn(move || {
                    for (k, w) in chunk.iter_mut().enumerate() {
                        *w = scan((t * per + k) as u32);
                    }
                });
            }
        });
    }

    let mut created = 0usize;
    for (i, list) in winners.iter().enumerate() {
        for &x in list {
            part.add_replica(x, i as u32);
            created += 1;
        }
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;

    /// Embedding 0 is globally hot (used by every sample); embeddings 1..5
    /// are cold and local.
    fn hot_graph() -> Bigraph {
        let rows: Vec<Vec<u32>> = (0..20)
            .map(|i| vec![0u32, 1 + (i % 5) as u32])
            .collect();
        Bigraph::from_samples(6, &rows)
    }

    fn base_partition() -> Partition {
        // Samples split evenly; primaries: hot emb 0 on partition 0, others
        // spread.
        let sample_owner = (0..20).map(|i| (i % 2) as u32).collect();
        let emb_primary = vec![0, 0, 1, 0, 1, 0];
        Partition::new(2, sample_owner, emb_primary)
    }

    #[test]
    fn replicates_hottest_first() {
        let g = hot_graph();
        let mut p = base_partition();
        let before = PartitionMetrics::compute(&g, &p, None).remote_fetches;
        let created = replicate_hot_embeddings(
            &g,
            &mut p,
            ReplicationBudget::PerPartitionSlots(1),
        );
        assert!(created >= 1);
        // Partition 1's single slot must go to embedding 0 (hottest remote).
        assert!(p.is_secondary(0, 1));
        let after = PartitionMetrics::compute(&g, &p, None).remote_fetches;
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn budget_zero_is_noop() {
        let g = hot_graph();
        let mut p = base_partition();
        let created =
            replicate_hot_embeddings(&g, &mut p, ReplicationBudget::FractionOfEmbeddings(0.0));
        assert_eq!(created, 0);
        assert_eq!(p.replication_factor(), 1.0);
    }

    #[test]
    fn fraction_budget_respected() {
        let g = hot_graph();
        let mut p = base_partition();
        // 6 embeddings × 0.34 → 2 slots per partition.
        replicate_hot_embeddings(&g, &mut p, ReplicationBudget::FractionOfEmbeddings(0.34));
        let replicas = p.replicas_per_partition();
        let primaries = p.primaries_per_partition();
        for k in 0..2 {
            assert!(replicas[k] - primaries[k] <= 2, "budget exceeded: {replicas:?}");
        }
    }

    #[test]
    fn never_replicates_unaccessed() {
        // Embedding 5 exists but is never read remotely by partition 0.
        let g = Bigraph::from_samples(6, &[vec![0], vec![1]]);
        let mut p = Partition::new(2, vec![0, 1], vec![1, 0, 0, 0, 0, 0]);
        replicate_hot_embeddings(&g, &mut p, ReplicationBudget::PerPartitionSlots(10));
        // Only the actually-accessed remote embeddings got replicas.
        assert!(p.is_secondary(0, 0)); // sample 0 on part 0 reads emb 0 (primary on 1)
        assert!(p.is_secondary(1, 1));
        for e in 2..6 {
            assert_eq!(p.replica_count(e), 1, "emb {e} replicated needlessly");
        }
    }

    #[test]
    fn full_replication_eliminates_remote() {
        let g = hot_graph();
        let mut p = base_partition();
        replicate_hot_embeddings(&g, &mut p, ReplicationBudget::FractionOfEmbeddings(1.0));
        let m = PartitionMetrics::compute(&g, &p, None);
        assert_eq!(m.remote_fetches, 0);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn bad_fraction_panics() {
        let g = hot_graph();
        let mut p = base_partition();
        replicate_hot_embeddings(&g, &mut p, ReplicationBudget::FractionOfEmbeddings(1.5));
    }
}
