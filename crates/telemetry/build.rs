//! Stamps the git revision into the build so [`RunManifest`]s can record
//! which tree produced an artifact. Falls back to "unknown" outside a git
//! checkout (e.g. a source tarball) — the build must never fail on this.

use std::process::Command;

fn main() {
    let rev = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=HETGMP_GIT_REV={rev}");
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
