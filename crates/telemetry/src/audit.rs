//! Runtime consistency auditing for the bounded-asynchronous protocol.
//!
//! HET-GMP's §5.3 guarantee is that no embedding read is served with an
//! intra- or inter-embedding clock gap above the configured staleness
//! bound `s`. The [`ProtocolAuditor`] turns that paper guarantee into a
//! checked runtime invariant: workers report every sync decision to it,
//! it records the *raw* (pre-sync) gap distributions as the
//! `protocol.gap.intra` / `protocol.gap.inter` histograms, and it counts
//! any read actually **served** with a gap above the bound as a violation
//! (`protocol.violation.*` counters). Under a correct implementation the
//! violation count is zero for every bound — BSP (`s = 0`) included —
//! while the gap histograms still show how far replicas drift under ASP.
//!
//! In strict mode ([`AuditMode::Strict`]) the first violation trips the
//! auditor; the trainer polls [`ProtocolAuditor::is_tripped`] at batch
//! boundaries and aborts the run, and the CLI exits with
//! [`HetGmpError::Audit`].

use crate::json::Json;
use crate::recorder::Recorder;
use crate::{names, HetGmpError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// What the auditor should do with violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// No auditing (the default).
    #[default]
    Off,
    /// Observe gaps and count violations; never abort.
    Count,
    /// Count, and trip on the first violation so the trainer fails fast.
    Strict,
}

impl AuditMode {
    /// Parses a `--audit[=MODE]` value; the bare flag (empty string)
    /// means counting mode.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "" | "count" => Some(Self::Count),
            "strict" => Some(Self::Strict),
            "off" => Some(Self::Off),
            _ => None,
        }
    }

    /// `true` unless [`AuditMode::Off`].
    pub fn is_on(self) -> bool {
        !matches!(self, Self::Off)
    }
}

/// Monotonic max over non-negative `f64`s stored as bits (for
/// non-negative floats, the bit pattern orders like the value).
fn atomic_max_f64(cell: &AtomicU64, value: f64) {
    cell.fetch_max(value.max(0.0).to_bits(), Ordering::Relaxed);
}

/// Shared observer of every staleness decision the embedding workers make.
///
/// One auditor is shared (`Arc`) across all workers; the hot-path methods
/// are a few relaxed atomics plus histogram writes into the calling
/// worker's own recorder, so workers never contend with each other.
#[derive(Debug)]
pub struct ProtocolAuditor {
    /// The configured staleness bound `s` (`f64::INFINITY` = ASP).
    bound: f64,
    strict: bool,
    intra_reads: AtomicU64,
    inter_checks: AtomicU64,
    intra_violations: AtomicU64,
    inter_violations: AtomicU64,
    max_intra_bits: AtomicU64,
    max_inter_bits: AtomicU64,
    tripped: Mutex<Option<String>>,
}

impl ProtocolAuditor {
    /// Auditor for staleness bound `s` (use `f64::INFINITY` for ASP).
    pub fn new(bound: f64, mode: AuditMode) -> Self {
        Self {
            bound,
            strict: mode == AuditMode::Strict,
            intra_reads: AtomicU64::new(0),
            inter_checks: AtomicU64::new(0),
            intra_violations: AtomicU64::new(0),
            inter_violations: AtomicU64::new(0),
            max_intra_bits: AtomicU64::new(0),
            max_inter_bits: AtomicU64::new(0),
            tripped: Mutex::new(None),
        }
    }

    /// The audited staleness bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// `true` when a strict-mode violation has tripped the auditor.
    pub fn is_tripped(&self) -> bool {
        self.strict && self.tripped.lock().is_some()
    }

    fn trip(&self, kind: &str, raw_gap: f64, served_gap: f64) {
        let mut slot = self.tripped.lock();
        if slot.is_none() {
            *slot = Some(format!(
                "{kind} staleness violation: read served with gap {served_gap} \
                 (raw gap {raw_gap}) above bound {}",
                self.bound
            ));
        }
    }

    /// Reports one intra-embedding staleness check. `raw_gap` is the clock
    /// gap before any sync; `served_gap` is the gap the read was actually
    /// served with (0 after a replica refresh).
    pub fn observe_intra(&self, recorder: Option<&dyn Recorder>, raw_gap: f64, served_gap: f64) {
        self.intra_reads.fetch_add(1, Ordering::Relaxed);
        atomic_max_f64(&self.max_intra_bits, raw_gap);
        if let Some(r) = recorder {
            r.histogram_observe(names::PROTOCOL_GAP_INTRA, raw_gap);
        }
        if served_gap > self.bound {
            self.intra_violations.fetch_add(1, Ordering::Relaxed);
            if let Some(r) = recorder {
                r.counter_add(names::PROTOCOL_VIOLATION_INTRA, 1);
            }
            if self.strict {
                self.trip("intra-embedding", raw_gap, served_gap);
            }
        }
    }

    /// Reports one inter-embedding staleness check (normalised clock gap,
    /// §5.3). Same raw/served split as [`ProtocolAuditor::observe_intra`].
    pub fn observe_inter(&self, recorder: Option<&dyn Recorder>, raw_gap: f64, served_gap: f64) {
        self.inter_checks.fetch_add(1, Ordering::Relaxed);
        atomic_max_f64(&self.max_inter_bits, raw_gap);
        if let Some(r) = recorder {
            r.histogram_observe(names::PROTOCOL_GAP_INTER, raw_gap);
        }
        if served_gap > self.bound {
            self.inter_violations.fetch_add(1, Ordering::Relaxed);
            if let Some(r) = recorder {
                r.counter_add(names::PROTOCOL_VIOLATION_INTER, 1);
            }
            if self.strict {
                self.trip("inter-embedding", raw_gap, served_gap);
            }
        }
    }

    /// Snapshot of everything observed so far.
    pub fn summary(&self) -> AuditSummary {
        AuditSummary {
            bound: self.bound,
            strict: self.strict,
            intra_reads: self.intra_reads.load(Ordering::Relaxed),
            inter_checks: self.inter_checks.load(Ordering::Relaxed),
            intra_violations: self.intra_violations.load(Ordering::Relaxed),
            inter_violations: self.inter_violations.load(Ordering::Relaxed),
            max_intra_gap: f64::from_bits(self.max_intra_bits.load(Ordering::Relaxed)),
            max_inter_gap: f64::from_bits(self.max_inter_bits.load(Ordering::Relaxed)),
            strict_failure: self.tripped.lock().clone(),
        }
    }
}

/// What an audited run observed; carried on `TrainResult`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditSummary {
    /// The staleness bound the run was audited against.
    pub bound: f64,
    /// Whether strict (fail-fast) mode was on.
    pub strict: bool,
    /// Intra-embedding staleness checks observed.
    pub intra_reads: u64,
    /// Inter-embedding staleness checks observed.
    pub inter_checks: u64,
    /// Reads served with an intra gap above the bound.
    pub intra_violations: u64,
    /// Reads served with an inter gap above the bound.
    pub inter_violations: u64,
    /// Largest raw intra-embedding gap seen (drift under ASP).
    pub max_intra_gap: f64,
    /// Largest raw inter-embedding gap seen.
    pub max_inter_gap: f64,
    /// Strict-mode trip message, if the run was aborted.
    pub strict_failure: Option<String>,
}

impl AuditSummary {
    /// Total violations across both gap kinds.
    pub fn total_violations(&self) -> u64 {
        self.intra_violations + self.inter_violations
    }

    /// The error a strict run should surface, if it tripped.
    pub fn to_error(&self) -> Option<HetGmpError> {
        self.strict_failure.as_ref().map(|m| HetGmpError::audit(m.clone()))
    }

    /// JSON form, embedded in JSONL records and `TrainResult` dumps.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bound", Json::F64(self.bound)),
            ("strict", Json::Bool(self.strict)),
            ("intra_reads", Json::U64(self.intra_reads)),
            ("inter_checks", Json::U64(self.inter_checks)),
            ("intra_violations", Json::U64(self.intra_violations)),
            ("inter_violations", Json::U64(self.inter_violations)),
            ("max_intra_gap", Json::F64(self.max_intra_gap)),
            ("max_inter_gap", Json::F64(self.max_inter_gap)),
            (
                "strict_failure",
                match &self.strict_failure {
                    Some(m) => Json::from(m.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// One-paragraph human rendering for the CLI.
    pub fn render(&self) -> String {
        let bound = if self.bound.is_finite() {
            format!("{}", self.bound)
        } else {
            "inf (ASP)".to_string()
        };
        let mut out = format!(
            "audit: bound={bound} checks={} (intra {}, inter {}) violations={} \
             max_gap intra={:.3} inter={:.3}",
            self.intra_reads + self.inter_checks,
            self.intra_reads,
            self.inter_checks,
            self.total_violations(),
            self.max_intra_gap,
            self.max_inter_gap,
        );
        if let Some(m) = &self.strict_failure {
            out.push_str(&format!("\naudit: STRICT FAILURE: {m}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRecorder;

    #[test]
    fn mode_parses_cli_spellings() {
        assert_eq!(AuditMode::parse(""), Some(AuditMode::Count));
        assert_eq!(AuditMode::parse("count"), Some(AuditMode::Count));
        assert_eq!(AuditMode::parse("strict"), Some(AuditMode::Strict));
        assert_eq!(AuditMode::parse("off"), Some(AuditMode::Off));
        assert_eq!(AuditMode::parse("bogus"), None);
        assert!(AuditMode::Count.is_on());
        assert!(!AuditMode::Off.is_on());
    }

    #[test]
    fn served_within_bound_is_not_a_violation() {
        let a = ProtocolAuditor::new(10.0, AuditMode::Strict);
        let r = MemoryRecorder::new();
        // Raw gap above the bound, but the worker synced before serving.
        a.observe_intra(Some(&r), 25.0, 0.0);
        // Raw gap within the bound, served as-is.
        a.observe_intra(Some(&r), 7.0, 7.0);
        let s = a.summary();
        assert_eq!(s.intra_reads, 2);
        assert_eq!(s.intra_violations, 0);
        assert_eq!(s.max_intra_gap, 25.0);
        assert!(!a.is_tripped());
        let snap = r.snapshot();
        assert_eq!(snap.histogram(names::PROTOCOL_GAP_INTRA).count, 2);
        assert_eq!(snap.counter(names::PROTOCOL_VIOLATION_INTRA), 0);
    }

    #[test]
    fn strict_mode_trips_on_first_served_violation() {
        let a = ProtocolAuditor::new(0.0, AuditMode::Strict);
        a.observe_inter(None, 3.0, 3.0);
        a.observe_inter(None, 9.0, 9.0);
        assert!(a.is_tripped());
        let s = a.summary();
        assert_eq!(s.inter_violations, 2);
        let msg = s.strict_failure.clone().unwrap();
        assert!(msg.contains("gap 3"), "first violation should win: {msg}");
        assert_eq!(s.to_error().unwrap().exit_code(), 70);
    }

    #[test]
    fn count_mode_never_trips() {
        let a = ProtocolAuditor::new(0.0, AuditMode::Count);
        a.observe_intra(None, 5.0, 5.0);
        assert!(!a.is_tripped());
        assert_eq!(a.summary().total_violations(), 1);
        assert!(a.summary().to_error().is_none());
    }

    #[test]
    fn infinite_bound_records_drift_without_violations() {
        let a = ProtocolAuditor::new(f64::INFINITY, AuditMode::Strict);
        for gap in [1.0, 40.0, 2.0] {
            a.observe_intra(None, gap, gap);
        }
        let s = a.summary();
        assert_eq!(s.total_violations(), 0);
        assert_eq!(s.max_intra_gap, 40.0);
        assert!(!a.is_tripped());
    }

    #[test]
    fn summary_renders_json_and_text() {
        let a = ProtocolAuditor::new(100.0, AuditMode::Count);
        a.observe_intra(None, 3.0, 3.0);
        a.observe_inter(None, 1.5, 1.5);
        let s = a.summary();
        let json = s.to_json().render();
        assert!(json.contains(r#""intra_reads":1"#), "{json}");
        assert!(json.contains(r#""strict_failure":null"#), "{json}");
        let text = s.render();
        assert!(text.contains("violations=0"), "{text}");
    }
}
