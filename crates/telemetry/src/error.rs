//! The workspace-wide error type.
//!
//! Bad user input (malformed datasets, invalid configs, unreadable
//! checkpoints) surfaces as [`HetGmpError`] instead of a panic, and the CLI
//! maps each kind to a BSD `sysexits`-style exit code so scripted callers
//! can distinguish usage mistakes from data corruption from I/O failure.

use std::fmt;
use std::path::{Path, PathBuf};

/// Any error HET-GMP reports to a user.
#[derive(Debug)]
pub enum HetGmpError {
    /// Operating-system I/O failure while touching `path`.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// Malformed input data (dataset files, embedding dumps).
    Data {
        /// File the malformed content came from, when known.
        path: Option<PathBuf>,
        /// 1-based line number, when known (0 = not line-oriented).
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A checkpoint file exists but cannot be loaded as requested.
    Checkpoint {
        /// Checkpoint file.
        path: PathBuf,
        /// What was wrong (bad magic, shape mismatch, truncation…).
        reason: String,
    },
    /// An invalid configuration value (builder validation, CLI options).
    Config {
        /// The offending parameter, e.g. `"dim"` or `"test_fraction"`.
        param: String,
        /// Why the value is rejected.
        reason: String,
    },
    /// Malformed command-line invocation.
    Usage {
        /// What was wrong with the invocation.
        reason: String,
    },
    /// A strict-mode protocol audit detected a consistency violation at
    /// runtime (a read served beyond the configured staleness bound).
    Audit {
        /// What invariant was violated.
        reason: String,
    },
    /// A communication endpoint became unavailable at runtime (a peer's
    /// mailbox dropped, e.g. because the fault injector crashed it).
    Comms {
        /// What channel operation failed and why.
        reason: String,
    },
}

impl HetGmpError {
    /// I/O failure on `path`.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Self::Io {
            path: path.into(),
            source,
        }
    }

    /// Malformed content at `line` (1-based) of `path`.
    pub fn data(path: impl Into<PathBuf>, line: usize, reason: impl Into<String>) -> Self {
        Self::Data {
            path: Some(path.into()),
            line,
            reason: reason.into(),
        }
    }

    /// Malformed content with no file attribution (e.g. in-memory input).
    pub fn data_unattributed(line: usize, reason: impl Into<String>) -> Self {
        Self::Data {
            path: None,
            line,
            reason: reason.into(),
        }
    }

    /// Unloadable checkpoint at `path`.
    pub fn checkpoint(path: impl Into<PathBuf>, reason: impl Into<String>) -> Self {
        Self::Checkpoint {
            path: path.into(),
            reason: reason.into(),
        }
    }

    /// Rejected configuration value.
    pub fn config(param: impl Into<String>, reason: impl Into<String>) -> Self {
        Self::Config {
            param: param.into(),
            reason: reason.into(),
        }
    }

    /// Malformed CLI invocation.
    pub fn usage(reason: impl Into<String>) -> Self {
        Self::Usage {
            reason: reason.into(),
        }
    }

    /// Strict-audit consistency violation.
    pub fn audit(reason: impl Into<String>) -> Self {
        Self::Audit {
            reason: reason.into(),
        }
    }

    /// Unavailable communication endpoint (dropped peer mailbox).
    pub fn comms(reason: impl Into<String>) -> Self {
        Self::Comms {
            reason: reason.into(),
        }
    }

    /// Process exit code for this error, following BSD `sysexits.h`
    /// conventions: 2 = usage, 65 = bad data, 69 = unavailable peer,
    /// 70 = internal invariant (audit) failure, 74 = I/O, 78 = bad config.
    pub fn exit_code(&self) -> u8 {
        match self {
            Self::Usage { .. } => 2,
            Self::Data { .. } | Self::Checkpoint { .. } => 65,
            Self::Comms { .. } => 69,
            Self::Audit { .. } => 70,
            Self::Io { .. } => 74,
            Self::Config { .. } => 78,
        }
    }

    /// The file this error is about, when there is one.
    pub fn path(&self) -> Option<&Path> {
        match self {
            Self::Io { path, .. } | Self::Checkpoint { path, .. } => Some(path),
            Self::Data { path, .. } => path.as_deref(),
            Self::Config { .. } | Self::Usage { .. } | Self::Audit { .. }
            | Self::Comms { .. } => None,
        }
    }
}

impl fmt::Display for HetGmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            Self::Data { path, line, reason } => {
                match (path, line) {
                    (Some(p), 0) => write!(f, "malformed data in {}: {reason}", p.display()),
                    (Some(p), n) => {
                        write!(f, "malformed data in {} (line {n}): {reason}", p.display())
                    }
                    (None, 0) => write!(f, "malformed data: {reason}"),
                    (None, n) => write!(f, "malformed data (line {n}): {reason}"),
                }
            }
            Self::Checkpoint { path, reason } => {
                write!(f, "bad checkpoint {}: {reason}", path.display())
            }
            Self::Config { param, reason } => {
                write!(f, "invalid config `{param}`: {reason}")
            }
            Self::Usage { reason } => write!(f, "usage error: {reason}"),
            Self::Audit { reason } => write!(f, "audit failure: {reason}"),
            Self::Comms { reason } => write!(f, "communication failure: {reason}"),
        }
    }
}

impl std::error::Error for HetGmpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::HetGmpError;

    #[test]
    fn exit_codes_follow_sysexits() {
        assert_eq!(HetGmpError::usage("x").exit_code(), 2);
        assert_eq!(HetGmpError::data("f", 3, "x").exit_code(), 65);
        assert_eq!(HetGmpError::checkpoint("f", "x").exit_code(), 65);
        assert_eq!(
            HetGmpError::io("f", std::io::Error::other("x")).exit_code(),
            74
        );
        assert_eq!(HetGmpError::config("dim", "x").exit_code(), 78);
        assert_eq!(HetGmpError::audit("stale read").exit_code(), 70);
        assert_eq!(HetGmpError::comms("peer mailbox dropped").exit_code(), 69);
    }

    #[test]
    fn display_includes_location() {
        let e = HetGmpError::data("data/train.libsvm", 17, "empty feature list");
        let msg = e.to_string();
        assert!(msg.contains("data/train.libsvm"), "{msg}");
        assert!(msg.contains("line 17"), "{msg}");
        let e = HetGmpError::data_unattributed(0, "short row");
        assert_eq!(e.to_string(), "malformed data: short row");
    }
}
