//! Exporters: JSONL event log and pretty-printed summaries.

use crate::error::HetGmpError;
use crate::json::Json;
use crate::snapshot::TelemetrySnapshot;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Append-style writer producing one JSON object per line.
///
/// Each record carries an `event` tag plus caller-supplied fields, so a
/// single file can interleave per-iteration records with the final
/// snapshot:
///
/// ```text
/// {"event":"epoch","epoch":1,"counters":{...},...}
/// {"event":"final","counters":{...},...}
/// ```
///
/// The path `-` writes to stdout instead of a file, so telemetry and
/// traces can be piped straight into `jq` and friends. For file paths,
/// missing parent directories are created.
#[derive(Debug)]
pub struct JsonlWriter {
    path: PathBuf,
    out: Sink,
}

#[derive(Debug)]
enum Sink {
    File(BufWriter<File>),
    Stdout(std::io::Stdout),
}

impl Sink {
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            Sink::File(f) => f.write_all(bytes),
            Sink::Stdout(s) => s.lock().write_all(bytes),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sink::File(f) => f.flush(),
            Sink::Stdout(s) => s.lock().flush(),
        }
    }
}

impl JsonlWriter {
    /// Creates (or truncates) the file at `path`, creating missing parent
    /// directories. The special path `-` writes to stdout.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, HetGmpError> {
        let path = path.as_ref().to_path_buf();
        if path == Path::new("-") {
            return Ok(Self {
                path,
                out: Sink::Stdout(std::io::stdout()),
            });
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| HetGmpError::io(&path, e))?;
            }
        }
        let file = File::create(&path).map_err(|e| HetGmpError::io(&path, e))?;
        Ok(Self {
            path,
            out: Sink::File(BufWriter::new(file)),
        })
    }

    /// The file being written (`-` for stdout).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one raw JSON record as a line.
    pub fn write_record(&mut self, record: &Json) -> Result<(), HetGmpError> {
        let line = record.render();
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .map_err(|e| HetGmpError::io(&self.path, e))
    }

    /// Writes a snapshot tagged with `event` and any extra fields (the
    /// extras come first, so `event`/`epoch` stay near the start of each
    /// line for human readers).
    pub fn write_snapshot(
        &mut self,
        event: &str,
        extra: &[(&str, Json)],
        snapshot: &TelemetrySnapshot,
    ) -> Result<(), HetGmpError> {
        let mut members: Vec<(String, Json)> =
            vec![("event".to_string(), Json::from(event))];
        for (k, v) in extra {
            members.push((k.to_string(), v.clone()));
        }
        if let Json::Obj(snap_members) = snapshot.to_json() {
            members.extend(snap_members);
        }
        self.write_record(&Json::Obj(members))
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) -> Result<(), HetGmpError> {
        self.out.flush().map_err(|e| HetGmpError::io(&self.path, e))
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::MemoryRecorder;

    #[test]
    fn writes_one_parseable_line_per_record() {
        let dir = std::env::temp_dir().join("hetgmp-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");

        let rec = MemoryRecorder::new();
        rec.counter_add("traffic.bytes.embed_data", 123);
        let snap = rec.snapshot();

        let mut w = JsonlWriter::create(&path).unwrap();
        w.write_snapshot("epoch", &[("epoch", Json::U64(1))], &snap)
            .unwrap();
        w.write_snapshot("final", &[], &snap).unwrap();
        w.flush().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"event":"epoch","epoch":1,"#), "{}", lines[0]);
        assert!(lines[0].contains(r#""traffic.bytes.embed_data":123"#));
        assert!(lines[1].starts_with(r#"{"event":"final","#));
        for line in lines {
            assert!(line.ends_with('}'));
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced braces: {line}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_makes_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!(
            "hetgmp-telemetry-parents-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/out.jsonl");

        let mut w = JsonlWriter::create(&path).unwrap();
        w.write_record(&Json::obj([("ok", Json::Bool(true))])).unwrap();
        w.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dash_path_writes_to_stdout_without_touching_disk() {
        let mut w = JsonlWriter::create("-").unwrap();
        assert_eq!(w.path(), std::path::Path::new("-"));
        w.write_record(&Json::obj([("event", Json::from("stdout-test"))]))
            .unwrap();
        w.flush().unwrap();
        assert!(!std::path::Path::new("-").exists());
    }

    #[test]
    fn create_on_bad_path_is_io_error_with_path() {
        // A *file* in the parent-directory position still fails: the
        // directory chain cannot be created through it.
        let dir = std::env::temp_dir().join(format!(
            "hetgmp-telemetry-badpath-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();

        let err = JsonlWriter::create(blocker.join("out.jsonl")).unwrap_err();
        assert_eq!(err.exit_code(), 74);
        assert!(err.path().unwrap().to_string_lossy().contains("blocker"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
