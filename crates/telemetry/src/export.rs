//! Exporters: JSONL event log and pretty-printed summaries.

use crate::error::HetGmpError;
use crate::json::Json;
use crate::snapshot::TelemetrySnapshot;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Append-style writer producing one JSON object per line.
///
/// Each record carries an `event` tag plus caller-supplied fields, so a
/// single file can interleave per-iteration records with the final
/// snapshot:
///
/// ```text
/// {"event":"epoch","epoch":1,"counters":{...},...}
/// {"event":"final","counters":{...},...}
/// ```
#[derive(Debug)]
pub struct JsonlWriter {
    path: PathBuf,
    out: BufWriter<File>,
}

impl JsonlWriter {
    /// Creates (or truncates) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, HetGmpError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| HetGmpError::io(&path, e))?;
        Ok(Self {
            path,
            out: BufWriter::new(file),
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one raw JSON record as a line.
    pub fn write_record(&mut self, record: &Json) -> Result<(), HetGmpError> {
        let line = record.render();
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .map_err(|e| HetGmpError::io(&self.path, e))
    }

    /// Writes a snapshot tagged with `event` and any extra fields (the
    /// extras come first, so `event`/`epoch` stay near the start of each
    /// line for human readers).
    pub fn write_snapshot(
        &mut self,
        event: &str,
        extra: &[(&str, Json)],
        snapshot: &TelemetrySnapshot,
    ) -> Result<(), HetGmpError> {
        let mut members: Vec<(String, Json)> =
            vec![("event".to_string(), Json::from(event))];
        for (k, v) in extra {
            members.push((k.to_string(), v.clone()));
        }
        if let Json::Obj(snap_members) = snapshot.to_json() {
            members.extend(snap_members);
        }
        self.write_record(&Json::Obj(members))
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) -> Result<(), HetGmpError> {
        self.out.flush().map_err(|e| HetGmpError::io(&self.path, e))
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::MemoryRecorder;

    #[test]
    fn writes_one_parseable_line_per_record() {
        let dir = std::env::temp_dir().join("hetgmp-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");

        let rec = MemoryRecorder::new();
        rec.counter_add("traffic.bytes.embed_data", 123);
        let snap = rec.snapshot();

        let mut w = JsonlWriter::create(&path).unwrap();
        w.write_snapshot("epoch", &[("epoch", Json::U64(1))], &snap)
            .unwrap();
        w.write_snapshot("final", &[], &snap).unwrap();
        w.flush().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"event":"epoch","epoch":1,"#), "{}", lines[0]);
        assert!(lines[0].contains(r#""traffic.bytes.embed_data":123"#));
        assert!(lines[1].starts_with(r#"{"event":"final","#));
        for line in lines {
            assert!(line.ends_with('}'));
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced braces: {line}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_on_bad_path_is_io_error_with_path() {
        let err = JsonlWriter::create("/nonexistent-dir-xyz/out.jsonl").unwrap_err();
        assert_eq!(err.exit_code(), 74);
        assert!(err.path().unwrap().to_string_lossy().contains("nonexistent"));
    }
}
