//! Minimal JSON document model used by the exporters and readers.
//!
//! The workspace has no serde; this covers exactly what telemetry needs:
//! building records programmatically, rendering them compactly with
//! correct string escaping and RFC 8259 number handling (non-finite floats
//! render as `null`), and parsing artifacts back for `het-gmp inspect`.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (renders without a decimal point).
    U64(u64),
    /// Floating-point number; NaN and infinities render as `null`.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members built inline.
    pub fn obj(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.into(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Parses one JSON document. Integers that fit a `u64` become
    /// [`Json::U64`]; every other number becomes [`Json::F64`]. Trailing
    /// whitespace is allowed, trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (covers both number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value as `u64` (floats only when exactly integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::F64(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{x:?}` keeps a decimal point or exponent, so the
                    // value round-trips as a float.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::U64(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::F64(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Recursive-descent parser over the input bytes. JSON structure is
/// ASCII, so byte-level scanning is safe; string contents are re-validated
/// as UTF-8 when sliced.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_nested_compact_json() {
        let doc = Json::obj([
            ("name", Json::from("net.bytes")),
            ("value", Json::from(1024u64)),
            ("ratio", Json::from(0.5)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"net.bytes","value":1024,"ratio":0.5,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::from("a\"b\\c\n").render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").render(), r#""\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
        assert_eq!(Json::F64(2.0).render(), "2.0");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("name", Json::from("net.bytes")),
            ("value", Json::from(1024u64)),
            ("ratio", Json::from(0.5)),
            ("neg", Json::F64(-3.25)),
            ("flag", Json::from(true)),
            ("tags", Json::Arr(vec![Json::from("a\"b\\c\n"), Json::Null])),
            ("nested", Json::obj([("k", Json::from(7u64))])),
        ]);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_handles_whitespace_numbers_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , -3 ] , \"s\" : \"x\\u0041\\ud83d\\ude00\" } ")
            .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::U64(1), Json::F64(25.0), Json::F64(-3.0)]
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("xA\u{1F600}"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_cover_variants() {
        let v = Json::parse(r#"{"n":3,"x":1.5,"s":"hi","b":false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("x").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
