//! Minimal JSON document model used by the exporters.
//!
//! The workspace has no serde; this covers exactly what telemetry needs:
//! building records programmatically and rendering them compactly with
//! correct string escaping and RFC 8259 number handling (non-finite floats
//! render as `null`).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (renders without a decimal point).
    U64(u64),
    /// Floating-point number; NaN and infinities render as `null`.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members built inline.
    pub fn obj(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.into(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{x:?}` keeps a decimal point or exponent, so the
                    // value round-trips as a float.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::U64(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::F64(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_nested_compact_json() {
        let doc = Json::obj([
            ("name", Json::from("net.bytes")),
            ("value", Json::from(1024u64)),
            ("ratio", Json::from(0.5)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"net.bytes","value":1024,"ratio":0.5,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::from("a\"b\\c\n").render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").render(), r#""\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
        assert_eq!(Json::F64(2.0).render(), "2.0");
    }
}
