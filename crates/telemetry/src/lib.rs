//! Unified telemetry for the HET-GMP workspace.
//!
//! Every instrumented component — the traffic ledger, simulated clocks,
//! embedding workers, partitioners, the trainer — writes named metrics
//! through one small [`Recorder`] trait:
//!
//! * **counters** — monotonic `u64` totals (bytes sent, cache hits),
//! * **gauges** — last-write-wins `f64` levels (simulated clock, scores),
//! * **histograms** — `f64` observation streams with count/sum/min/max,
//! * **spans** — RAII wall-clock timers feeding a histogram on drop.
//!
//! [`NoopRecorder`] is the default sink and costs nothing; a
//! [`MetricsRegistry`] hands each worker its own [`MemoryRecorder`] so the
//! hot path never contends, and merges everything into a
//! [`TelemetrySnapshot`] on demand. Snapshots export as JSONL
//! ([`JsonlWriter`]) or a pretty table
//! ([`TelemetrySnapshot::render_table`]).
//!
//! Metric names are dotted paths; the taxonomy (names, units, labels) is
//! documented in `TELEMETRY.md` at the repository root.
//!
//! This crate is also the home of [`HetGmpError`], the workspace-wide
//! error type mapped to process exit codes by the CLI.

pub mod error;
pub mod export;
pub mod json;
pub mod memory;
pub mod recorder;
pub mod registry;
pub mod snapshot;

pub use error::HetGmpError;
pub use export::JsonlWriter;
pub use json::Json;
pub use memory::MemoryRecorder;
pub use recorder::{NoopRecorder, Recorder, SpanGuard};
pub use registry::MetricsRegistry;
pub use snapshot::{HistogramSummary, TelemetrySnapshot};

/// Canonical metric names used across the workspace, so call sites and
/// tests never drift apart on spelling. See `TELEMETRY.md` for semantics.
pub mod names {
    /// Bytes moved per traffic class; suffixed by class label:
    /// `embed_data`, `keys_clocks`, `allreduce`.
    pub const TRAFFIC_BYTES_PREFIX: &str = "traffic.bytes.";
    /// Messages per traffic class; same suffixes as bytes.
    pub const TRAFFIC_MESSAGES_PREFIX: &str = "traffic.messages.";

    /// Simulated seconds per time category; suffixed by category:
    /// `compute`, `embed_comm`, `meta_comm`, `allreduce_comm`, `host_io`.
    pub const TIME_PREFIX: &str = "time.";

    /// Embedding reads served by the worker's own primary rows.
    pub const EMBED_READ_LOCAL_PRIMARY: &str = "embedding.read.local_primary";
    /// Embedding reads served by fresh-enough local replicas.
    pub const EMBED_READ_LOCAL_FRESH: &str = "embedding.read.local_fresh";
    /// Embedding reads that had to fetch from a remote primary.
    pub const EMBED_READ_REMOTE: &str = "embedding.read.remote";
    /// Intra-embedding (replica refresh) synchronisations.
    pub const EMBED_SYNC_INTRA: &str = "embedding.sync.intra";
    /// Inter-embedding (staleness bound) synchronisations.
    pub const EMBED_SYNC_INTER: &str = "embedding.sync.inter";
    /// Gradient updates deferred into the pending buffer.
    pub const EMBED_UPDATE_DEFERRED: &str = "embedding.update.deferred";
    /// Gradient updates applied straight to the primary.
    pub const EMBED_UPDATE_DIRECT: &str = "embedding.update.direct";
    /// Pending-buffer rows flushed to primaries.
    pub const EMBED_FLUSH_ROWS: &str = "embedding.flush.rows";
    /// LFU cache hits (dynamic-cache workers only).
    pub const EMBED_CACHE_HIT: &str = "embedding.cache.hit";
    /// LFU cache misses (dynamic-cache workers only).
    pub const EMBED_CACHE_MISS: &str = "embedding.cache.miss";
    /// Rows currently waiting in the pending buffer (gauge).
    pub const EMBED_PENDING_ROWS: &str = "embedding.pending_rows";

    /// Partitioner refinement rounds executed.
    pub const PARTITION_ROUNDS: &str = "partition.rounds";
    /// Vertices moved across all refinement rounds.
    pub const PARTITION_MOVES: &str = "partition.moves";
    /// Remote-fetch score after each round (histogram; one observation
    /// per round, so `min` is the best score reached).
    pub const PARTITION_ROUND_SCORE: &str = "partition.round.remote_fetches";
    /// Score improvement per round, in remote fetches removed (histogram).
    pub const PARTITION_ROUND_IMPROVEMENT: &str = "partition.round.improvement";
    /// Replicas created by hot-embedding replication.
    pub const PARTITION_REPLICAS_CREATED: &str = "partition.replicas.created";
    /// Replication budget, in replica slots (gauge).
    pub const PARTITION_REPLICATION_BUDGET: &str = "partition.replication.budget";
    /// Wall-clock seconds spent partitioning (histogram via span).
    pub const PARTITION_WALL_SECS: &str = "partition.wall_secs";

    /// Samples processed by the trainer.
    pub const TRAIN_SAMPLES: &str = "train.samples";
    /// Simulated seconds at the end of training (gauge).
    pub const TRAIN_SIM_TIME: &str = "train.sim_time_secs";
    /// Evaluation AUC after each epoch (gauge; last write = final AUC).
    pub const TRAIN_AUC: &str = "train.auc";
}

#[cfg(test)]
mod tests {
    use super::*;

    // The crate-level contract: recorders are object-safe and swap-able.
    #[test]
    fn recorders_are_object_safe() {
        let recorders: Vec<Box<dyn Recorder>> =
            vec![Box::new(NoopRecorder), Box::new(MemoryRecorder::new())];
        for r in &recorders {
            r.counter_add(names::EMBED_CACHE_HIT, 1);
            r.gauge_set(names::TRAIN_AUC, 0.5);
            r.histogram_observe("h", 1.0);
        }
    }

    #[test]
    fn traffic_prefix_constants_compose() {
        let r = MemoryRecorder::new();
        let name = format!("{}embed_data", names::TRAFFIC_BYTES_PREFIX);
        r.counter_add(&name, 64);
        assert_eq!(r.snapshot().counter_prefix_sum(names::TRAFFIC_BYTES_PREFIX), 64);
    }
}
