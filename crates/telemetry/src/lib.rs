//! Unified telemetry for the HET-GMP workspace.
//!
//! Every instrumented component — the traffic ledger, simulated clocks,
//! embedding workers, partitioners, the trainer — writes named metrics
//! through one small [`Recorder`] trait:
//!
//! * **counters** — monotonic `u64` totals (bytes sent, cache hits),
//! * **gauges** — last-write-wins `f64` levels (simulated clock, scores),
//! * **histograms** — `f64` observation streams with count/sum/min/max,
//! * **spans** — RAII wall-clock timers feeding a histogram on drop.
//!
//! [`NoopRecorder`] is the default sink and costs nothing; a
//! [`MetricsRegistry`] hands each worker its own [`MemoryRecorder`] so the
//! hot path never contends, and merges everything into a
//! [`TelemetrySnapshot`] on demand. Snapshots export as JSONL
//! ([`JsonlWriter`]) or a pretty table
//! ([`TelemetrySnapshot::render_table`]).
//!
//! Beside the aggregate pipeline sit two event-level observers: a
//! [`TraceCollector`] of typed [`TraceEvent`]s in bounded per-worker ring
//! buffers, exported as Chrome trace-event JSON (`chrome://tracing` /
//! Perfetto), and a [`ProtocolAuditor`] that turns the bounded-async
//! staleness guarantee into a checked runtime invariant.
//!
//! Metric names are dotted paths; the taxonomy (names, units, labels) is
//! documented in `TELEMETRY.md` at the repository root.
//!
//! This crate is also the home of [`HetGmpError`], the workspace-wide
//! error type mapped to process exit codes by the CLI.

pub mod audit;
pub mod error;
pub mod export;
pub mod json;
pub mod manifest;
pub mod memory;
pub mod recorder;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use audit::{AuditMode, AuditSummary, ProtocolAuditor};
pub use error::HetGmpError;
pub use export::JsonlWriter;
pub use json::Json;
pub use manifest::RunManifest;
pub use memory::MemoryRecorder;
pub use recorder::{NoopRecorder, Recorder, SimTimeCell, SpanGuard};
pub use registry::MetricsRegistry;
pub use snapshot::{HistogramSummary, TelemetrySnapshot};
pub use trace::{TraceCollector, TraceEvent, TraceLevel, TraceTrack};

/// Canonical metric names used across the workspace, so call sites and
/// tests never drift apart on spelling. See `TELEMETRY.md` for semantics.
pub mod names {
    /// Bytes moved per traffic class; suffixed by class label:
    /// `embed_data`, `keys_clocks`, `allreduce`.
    pub const TRAFFIC_BYTES_PREFIX: &str = "traffic.bytes.";
    /// Messages per traffic class; same suffixes as bytes.
    pub const TRAFFIC_MESSAGES_PREFIX: &str = "traffic.messages.";

    /// Simulated seconds per time category; suffixed by category:
    /// `compute`, `embed_comm`, `meta_comm`, `allreduce_comm`, `host_io`.
    pub const TIME_PREFIX: &str = "time.";

    /// Embedding reads served by the worker's own primary rows.
    pub const EMBED_READ_LOCAL_PRIMARY: &str = "embedding.read.local_primary";
    /// Embedding reads served by fresh-enough local replicas.
    pub const EMBED_READ_LOCAL_FRESH: &str = "embedding.read.local_fresh";
    /// Embedding reads that had to fetch from a remote primary.
    pub const EMBED_READ_REMOTE: &str = "embedding.read.remote";
    /// Intra-embedding (replica refresh) synchronisations.
    pub const EMBED_SYNC_INTRA: &str = "embedding.sync.intra";
    /// Inter-embedding (staleness bound) synchronisations.
    pub const EMBED_SYNC_INTER: &str = "embedding.sync.inter";
    /// Gradient updates deferred into the pending buffer.
    pub const EMBED_UPDATE_DEFERRED: &str = "embedding.update.deferred";
    /// Gradient updates applied straight to the primary.
    pub const EMBED_UPDATE_DIRECT: &str = "embedding.update.direct";
    /// Pending-buffer rows flushed to primaries.
    pub const EMBED_FLUSH_ROWS: &str = "embedding.flush.rows";
    /// LFU cache hits (dynamic-cache workers only).
    pub const EMBED_CACHE_HIT: &str = "embedding.cache.hit";
    /// LFU cache misses (dynamic-cache workers only).
    pub const EMBED_CACHE_MISS: &str = "embedding.cache.miss";
    /// Rows currently waiting in the pending buffer (gauge).
    pub const EMBED_PENDING_ROWS: &str = "embedding.pending_rows";

    /// Embedding payload rows sent through a lossy wire format.
    pub const COMMS_QUANT_ROWS: &str = "comms.quant.rows";
    /// Interconnect bytes saved by quantization vs raw f32 rows.
    pub const COMMS_QUANT_BYTES_SAVED: &str = "comms.quant.bytes_saved";

    /// Partitioner refinement rounds executed.
    pub const PARTITION_ROUNDS: &str = "partition.rounds";
    /// Vertices moved across all refinement rounds.
    pub const PARTITION_MOVES: &str = "partition.moves";
    /// Remote-fetch score after each round (histogram; one observation
    /// per round, so `min` is the best score reached).
    pub const PARTITION_ROUND_SCORE: &str = "partition.round.remote_fetches";
    /// Score improvement per round, in remote fetches removed (histogram).
    pub const PARTITION_ROUND_IMPROVEMENT: &str = "partition.round.improvement";
    /// Replicas created by hot-embedding replication.
    pub const PARTITION_REPLICAS_CREATED: &str = "partition.replicas.created";
    /// Replication budget, in replica slots (gauge).
    pub const PARTITION_REPLICATION_BUDGET: &str = "partition.replication.budget";
    /// Wall-clock seconds spent partitioning (histogram via span).
    pub const PARTITION_WALL_SECS: &str = "partition.wall_secs";

    /// Samples processed by the trainer.
    pub const TRAIN_SAMPLES: &str = "train.samples";
    /// Simulated seconds at the end of training (gauge).
    pub const TRAIN_SIM_TIME: &str = "train.sim_time_secs";
    /// Evaluation AUC after each epoch (gauge; last write = final AUC).
    pub const TRAIN_AUC: &str = "train.auc";

    /// Current simulated time in seconds (gauge, written by `SimClock`).
    pub const CLOCK_NOW: &str = "clock.now_secs";

    /// Raw intra-embedding clock gap observed at each read (histogram).
    pub const PROTOCOL_GAP_INTRA: &str = "protocol.gap.intra";
    /// Raw inter-embedding normalised clock gap per check (histogram).
    pub const PROTOCOL_GAP_INTER: &str = "protocol.gap.inter";
    /// Reads served with an intra gap above the staleness bound.
    pub const PROTOCOL_VIOLATION_INTRA: &str = "protocol.violation.intra";
    /// Reads served with an inter gap above the staleness bound.
    pub const PROTOCOL_VIOLATION_INTER: &str = "protocol.violation.inter";

    /// Trace span: one trainer epoch on a worker's timeline.
    pub const TRACE_EPOCH: &str = "trace.epoch";
    /// Trace span: one training batch (assemble + read + compute + sync).
    pub const TRACE_BATCH: &str = "trace.batch";
    /// Trace span: occupancy of an interconnect link by one transfer.
    pub const TRACE_LINK_TRANSFER: &str = "trace.link.transfer";
    /// Trace span: dense-gradient all-reduce on the link timeline.
    pub const TRACE_ALLREDUCE: &str = "trace.allreduce";
    /// Trace span: one partitioner refinement round (driver timeline).
    pub const TRACE_PARTITION_ROUND: &str = "trace.partition.round";
    /// Trace instant: per-batch embedding read mix (sync level).
    pub const TRACE_READ: &str = "trace.read";
    /// Trace instant: intra/inter synchronisation decision (sync level).
    pub const TRACE_SYNC: &str = "trace.sync";
    /// Trace instant: gradient-deferral decision (sync level).
    pub const TRACE_DEFER: &str = "trace.defer";
    /// Trace instant: traffic-ledger charge (sync level).
    pub const TRACE_TRAFFIC: &str = "trace.traffic";
    /// Trace instant: point-to-point mailbox send (sync level).
    pub const TRACE_MAILBOX_SEND: &str = "trace.mailbox.send";

    /// Counter: batches whose loss came back non-finite (NaN/∞). Non-zero
    /// means the run diverged; the CLI fails such runs.
    pub const TRAIN_LOSS_NONFINITE: &str = "train.loss.nonfinite";

    /// Counter: injected worker crashes taken.
    pub const FAULT_CRASHES: &str = "fault.crashes";
    /// Counter: injected worker stalls taken.
    pub const FAULT_STALLS: &str = "fault.stalls";
    /// Gauge: total stall downtime charged to simulated clocks, seconds.
    pub const FAULT_STALL_SECS: &str = "fault.stall_secs";
    /// Gauge: total crash-recovery time (restore + replay + restart
    /// overhead) charged to simulated clocks, seconds.
    pub const FAULT_RECOVERY_SECS: &str = "fault.recovery_secs";
    /// Counter: embedding updates rolled back (lost work) across crashes.
    pub const FAULT_LOST_UPDATES: &str = "fault.lost_updates";
    /// Counter: embedding rows restored from checkpoint during recovery.
    pub const FAULT_RESTORED_ROWS: &str = "fault.restored_rows";

    /// Counter: run checkpoints written.
    pub const CHECKPOINT_SAVES: &str = "checkpoint.saves";
    /// Counter: total checkpoint bytes written.
    pub const CHECKPOINT_BYTES: &str = "checkpoint.bytes";

    /// Trace instant: an injected crash takes a worker down.
    pub const TRACE_FAULT_CRASH: &str = "trace.fault.crash";
    /// Trace span: an injected stall parks a worker.
    pub const TRACE_FAULT_STALL: &str = "trace.fault.stall";
    /// Trace span: crash recovery (checkpoint restore + replay).
    pub const TRACE_FAULT_RECOVERY: &str = "trace.fault.recovery";
    /// Trace span: writing a run checkpoint (driver timeline).
    pub const TRACE_CHECKPOINT: &str = "trace.checkpoint";

    /// Counter: embedding rows fetched through the batched (shard-grouped)
    /// read path.
    pub const HOTPATH_BATCH_READ_ROWS: &str = "hotpath.batch.read_rows";
    /// Counter: embedding rows updated through the batched (shard-grouped)
    /// apply path.
    pub const HOTPATH_BATCH_APPLY_ROWS: &str = "hotpath.batch.apply_rows";
    /// Gauge: total data-path shard lock acquisitions on the primary table
    /// over the run (what batching amortises).
    pub const HOTPATH_LOCK_ACQUISITIONS: &str = "hotpath.lock_acquisitions";
    /// Gauge: end-to-end training throughput in samples per *wall-clock*
    /// second (the perf-baseline number; simulated-time throughput lives in
    /// `train.*`).
    pub const HOTPATH_SAMPLES_PER_SEC: &str = "hotpath.samples_per_sec";

    /// Counter: floating-point operations executed by the blocked dense
    /// kernels (2 per multiply-add; backward counted as 2× forward).
    pub const DENSE_GEMM_FLOPS: &str = "dense.gemm_flops";
    /// Gauge: high-water bytes reserved by the per-worker dense tape arenas
    /// (activations, gradient ping-pong buffers, model scratch), summed over
    /// workers. Flat after warmup by construction.
    pub const DENSE_ARENA_BYTES: &str = "dense.arena_bytes";
    /// Gauge: tape-buffer growth events after the first batch, summed over
    /// workers — the "zero steady-state allocations" contract; must be 0.
    pub const DENSE_TAPE_GROWTH: &str = "dense.tape.post_warmup_growth";
    /// Gauge: dense-path-only throughput — samples through forward + loss +
    /// backward per wall-clock second spent in that section (excludes
    /// embedding reads, collectives, and simulated-time bookkeeping;
    /// end-to-end throughput lives in `hotpath.samples_per_sec`).
    pub const DENSE_SAMPLES_PER_SEC: &str = "dense.samples_per_sec";

    /// Gauge: configured pipeline depth (`StepCtx` slots per worker; 1 =
    /// sequential legacy path).
    pub const PIPELINE_DEPTH: &str = "pipeline.depth";
    /// Gauge: configured row-panel GEMM threads per worker.
    pub const PIPELINE_GEMM_THREADS: &str = "pipeline.gemm_threads";
    /// Counter: batches whose embedding fetch was issued ahead of time by
    /// the prefetch stage (depth ≥ 2 only).
    pub const PIPELINE_PREFETCHED_BATCHES: &str = "pipeline.prefetch.batches";
    /// Counter (seconds): wall-clock time workers spent blocked waiting on
    /// a prefetched batch that was not ready yet — the pipeline's stall
    /// time. 0 means every fetch was fully hidden.
    pub const PIPELINE_STALL_SECS: &str = "pipeline.stall_secs";
    /// Counter (seconds): wall-clock time the prefetch stage spent fetching
    /// batches off the critical path (the work that stalls would otherwise
    /// expose).
    pub const PIPELINE_PREFETCH_SECS: &str = "pipeline.prefetch.wall_secs";
    /// Gauge: fraction of overlappable simulated communication hidden
    /// behind compute windows, aggregated over workers (deterministic —
    /// derived from `SimClock` charges, not wall time).
    pub const PIPELINE_OVERLAP_RATIO: &str = "pipeline.overlap_ratio";
    /// Gauge: fraction of batches in which the fetch stage ran concurrently
    /// with a compute stage (prefetched batches / total batches) — the
    /// stage-occupancy figure reported by `BENCH_pipeline.json`.
    pub const PIPELINE_STAGE_OCCUPANCY: &str = "pipeline.stage.occupancy";
    /// Trace track: one span per prefetched batch on the companion fetch
    /// thread (wall-clock duration of the background `read_batch`).
    pub const TRACE_PIPELINE_PREFETCH: &str = "trace.pipeline.prefetch";

    /// Per-stage attribution histograms, suffixed
    /// `<stage>.wall_secs` / `<stage>.sim_secs` where `<stage>` is one of
    /// [`PIPELINE_STAGES`]: wall-clock and simulated seconds one batch
    /// spent in that pipeline stage.
    pub const PIPELINE_STAGE_PREFIX: &str = "pipeline.stage.";
    /// The stage labels of the batch pipeline, in execution order:
    /// embedding fetch, dense compute, gradient write-back, dense sync.
    pub const PIPELINE_STAGES: [&str; 4] = ["fetch", "compute", "write_back", "sync"];
    /// Gauge (seconds): wall time the telemetry/profiling machinery itself
    /// consumed on the hot path (stage timestamps + histogram folds),
    /// summed over workers. The bench asserts this stays under 2% of the
    /// hot-path wall time.
    pub const TELEMETRY_OVERHEAD_SECS: &str = "telemetry.overhead_secs";
    /// Trace spans: per-stage sub-spans of a batch on the worker timeline
    /// (sync trace level only), suffixed by the [`PIPELINE_STAGES`] label.
    pub const TRACE_STAGE_PREFIX: &str = "trace.stage.";
}

#[cfg(test)]
mod tests {
    use super::*;

    // The crate-level contract: recorders are object-safe and swap-able.
    #[test]
    fn recorders_are_object_safe() {
        let recorders: Vec<Box<dyn Recorder>> =
            vec![Box::new(NoopRecorder), Box::new(MemoryRecorder::new())];
        for r in &recorders {
            r.counter_add(names::EMBED_CACHE_HIT, 1);
            r.gauge_set(names::TRAIN_AUC, 0.5);
            r.histogram_observe("h", 1.0);
        }
    }

    #[test]
    fn traffic_prefix_constants_compose() {
        let r = MemoryRecorder::new();
        let name = format!("{}embed_data", names::TRAFFIC_BYTES_PREFIX);
        r.counter_add(&name, 64);
        assert_eq!(r.snapshot().counter_prefix_sum(names::TRAFFIC_BYTES_PREFIX), 64);
    }
}
