//! Run manifests: the provenance header stamped into every artifact.
//!
//! A [`RunManifest`] records what produced an artifact — seed, a digest of
//! the strategy/trainer configuration, topology size, pipeline depth, GEMM
//! threads, git revision, and build profile — so any two telemetry JSONLs,
//! Chrome traces, or `BENCH_*.json` files are self-describing and
//! `het-gmp inspect diff` can refuse to silently compare apples to
//! oranges. Writers stamp it as the first JSONL record
//! (`{"event":"manifest","manifest":{...}}`), under `otherData.manifest`
//! in Chrome traces, and as a top-level `"manifest"` object in bench
//! JSON.

use crate::json::Json;

/// Version of the manifest header schema. Readers warn on unknown
/// versions instead of failing, so old tools survive new fields.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// Provenance header for one run's artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Header schema version ([`MANIFEST_SCHEMA_VERSION`] when written by
    /// this build).
    pub schema: u64,
    /// RNG seed the run was driven by.
    pub seed: u64,
    /// FNV-1a digest (16 hex chars) of the strategy + trainer
    /// configuration summary; equal digests mean comparable runs.
    pub config_digest: String,
    /// Number of embedding workers in the simulated topology.
    pub workers: u64,
    /// Software-pipeline depth (`StepCtx` slots per worker).
    pub pipeline_depth: u64,
    /// Row-panel GEMM threads per worker.
    pub gemm_threads: u64,
    /// Git revision the binary was built from ("unknown" outside git).
    pub git_rev: String,
    /// Cargo build profile: "release" or "debug".
    pub build_profile: String,
}

impl RunManifest {
    /// Manifest for the current build: git rev and profile are stamped at
    /// compile time, the run parameters come from the caller.
    pub fn new(
        seed: u64,
        config_digest: impl Into<String>,
        workers: usize,
        pipeline_depth: usize,
        gemm_threads: usize,
    ) -> Self {
        Self {
            schema: MANIFEST_SCHEMA_VERSION,
            seed,
            config_digest: config_digest.into(),
            workers: workers as u64,
            pipeline_depth: pipeline_depth as u64,
            gemm_threads: gemm_threads as u64,
            git_rev: git_rev().to_string(),
            build_profile: build_profile().to_string(),
        }
    }

    /// FNV-1a 64-bit digest of a canonical config rendering, as 16 hex
    /// characters. Callers feed it a `Debug`/`format!` summary of the
    /// strategy + trainer configuration; any field change changes the
    /// digest.
    pub fn digest_of(text: &str) -> String {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in text.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(PRIME);
        }
        format!("{hash:016x}")
    }

    /// The manifest as a JSON object (the artifact header payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::U64(self.schema)),
            ("seed", Json::U64(self.seed)),
            ("config_digest", Json::from(self.config_digest.as_str())),
            ("workers", Json::U64(self.workers)),
            ("pipeline_depth", Json::U64(self.pipeline_depth)),
            ("gemm_threads", Json::U64(self.gemm_threads)),
            ("git_rev", Json::from(self.git_rev.as_str())),
            ("build_profile", Json::from(self.build_profile.as_str())),
        ])
    }

    /// The manifest as a full JSONL record:
    /// `{"event":"manifest","manifest":{...}}` — the first line of every
    /// telemetry JSONL.
    pub fn to_record(&self) -> Json {
        Json::obj([
            ("event", Json::from("manifest")),
            ("manifest", self.to_json()),
        ])
    }

    /// Reads a manifest back from its JSON object form (the payload
    /// produced by [`RunManifest::to_json`]). `None` when required fields
    /// are missing or mistyped.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            schema: v.get("schema")?.as_u64()?,
            seed: v.get("seed")?.as_u64()?,
            config_digest: v.get("config_digest")?.as_str()?.to_string(),
            workers: v.get("workers")?.as_u64()?,
            pipeline_depth: v.get("pipeline_depth")?.as_u64()?,
            gemm_threads: v.get("gemm_threads")?.as_u64()?,
            git_rev: v.get("git_rev")?.as_str()?.to_string(),
            build_profile: v.get("build_profile")?.as_str()?.to_string(),
        })
    }

    /// Comparability check: the fields that must match for two runs to be
    /// meaningfully diffed. Returns one human-readable line per mismatch.
    /// `git_rev` is deliberately excluded — comparing two revisions is the
    /// whole point of a regression diff — but mixing build profiles or
    /// workloads is flagged.
    pub fn mismatches(&self, other: &Self) -> Vec<String> {
        let mut out = Vec::new();
        let mut field = |name: &str, a: &dyn std::fmt::Display, b: &dyn std::fmt::Display| {
            let (a, b) = (a.to_string(), b.to_string());
            if a != b {
                out.push(format!("{name}: {a} vs {b}"));
            }
        };
        field("schema", &self.schema, &other.schema);
        field("seed", &self.seed, &other.seed);
        field("config_digest", &self.config_digest, &other.config_digest);
        field("workers", &self.workers, &other.workers);
        field("pipeline_depth", &self.pipeline_depth, &other.pipeline_depth);
        field("gemm_threads", &self.gemm_threads, &other.gemm_threads);
        field("build_profile", &self.build_profile, &other.build_profile);
        out
    }
}

/// Git revision this binary was built from (stamped by `build.rs`).
pub fn git_rev() -> &'static str {
    option_env!("HETGMP_GIT_REV").unwrap_or("unknown")
}

/// Cargo build profile of this binary.
pub fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest::new(42, RunManifest::digest_of("cfg"), 4, 2, 1)
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let m = sample();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // And via an actual render/parse cycle, as artifacts do it.
        let parsed = Json::parse(&m.to_record().render()).unwrap();
        assert_eq!(parsed.get("event").unwrap().as_str(), Some("manifest"));
        let back = RunManifest::from_json(parsed.get("manifest").unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        assert_eq!(RunManifest::digest_of("a"), RunManifest::digest_of("a"));
        assert_ne!(RunManifest::digest_of("a"), RunManifest::digest_of("b"));
        assert_eq!(RunManifest::digest_of("x").len(), 16);
    }

    #[test]
    fn mismatches_flag_comparability_fields_only() {
        let a = sample();
        let mut b = sample();
        assert!(a.mismatches(&b).is_empty());
        b.seed = 43;
        b.git_rev = "feedfeedfeed".to_string();
        let lines = a.mismatches(&b);
        assert_eq!(lines.len(), 1, "git_rev must not be flagged: {lines:?}");
        assert!(lines[0].starts_with("seed:"), "{lines:?}");
    }

    #[test]
    fn from_json_rejects_malformed_headers() {
        assert!(RunManifest::from_json(&Json::Null).is_none());
        let missing = Json::obj([("schema", Json::U64(1))]);
        assert!(RunManifest::from_json(&missing).is_none());
    }
}
