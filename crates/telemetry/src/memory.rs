//! In-memory [`Recorder`] implementation.

use crate::recorder::Recorder;
use crate::snapshot::{HistogramSummary, TelemetrySnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Thread-safe recorder that aggregates everything in memory.
///
/// One mutex per instrument family keeps contention low; training code
/// typically gives each worker its own `MemoryRecorder` (via
/// [`crate::MetricsRegistry`]) so cross-thread contention is zero on the
/// hot path and aggregation happens only at snapshot time.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, HistogramSummary>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the current state into an immutable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters.lock().clone(),
            gauges: self.gauges.lock().clone(),
            histograms: self.histograms.lock().clone(),
        }
    }

    /// Clears every recorded metric.
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
    }

    /// Clears only metrics whose name starts with `prefix`. Lets a façade
    /// (e.g. the traffic ledger) reset its own counters on a recorder it
    /// shares with other components.
    pub fn reset_prefix(&self, prefix: &str) {
        self.counters.lock().retain(|k, _| !k.starts_with(prefix));
        self.gauges.lock().retain(|k, _| !k.starts_with(prefix));
        self.histograms.lock().retain(|k, _| !k.starts_with(prefix));
    }

    /// Current value of one counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }
}

impl Recorder for MemoryRecorder {
    fn counter_add(&self, name: &str, value: u64) {
        let mut counters = self.counters.lock();
        match counters.get_mut(name) {
            Some(v) => *v += value,
            None => {
                counters.insert(name.to_string(), value);
            }
        }
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock();
        match gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                gauges.insert(name.to_string(), value);
            }
        }
    }

    fn histogram_observe(&self, name: &str, value: f64) {
        let mut histograms = self.histograms.lock();
        match histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = HistogramSummary::empty();
                h.observe(value);
                histograms.insert(name.to_string(), h);
            }
        }
    }

    fn histogram_merge(&self, name: &str, summary: &HistogramSummary) {
        if summary.count == 0 {
            return;
        }
        let mut histograms = self.histograms.lock();
        match histograms.get_mut(name) {
            Some(h) => h.merge(summary),
            None => {
                histograms.insert(name.to_string(), *summary);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MemoryRecorder::new();
        r.counter_add("a", 3);
        r.counter_add("a", 4);
        r.counter_add("b", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 7);
        assert_eq!(s.counter("b"), 1);
    }

    #[test]
    fn gauges_keep_last_value() {
        let r = MemoryRecorder::new();
        r.gauge_set("g", 1.0);
        r.gauge_set("g", -2.5);
        assert_eq!(r.snapshot().gauge("g"), Some(-2.5));
    }

    #[test]
    fn histograms_track_all_statistics() {
        let r = MemoryRecorder::new();
        for v in [1.0, 2.0, 6.0] {
            r.histogram_observe("h", v);
        }
        let h = r.snapshot().histogram("h");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 6.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        r.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("hits"), 8000);
    }

    #[test]
    fn histogram_merge_matches_individual_observations() {
        let merged = MemoryRecorder::new();
        let observed = MemoryRecorder::new();
        let mut local = HistogramSummary::empty();
        for v in [0.5, 1.5, 9.0] {
            local.observe(v);
            observed.histogram_observe("h", v);
        }
        merged.histogram_merge("h", &local);
        assert_eq!(merged.snapshot().histogram("h"), observed.snapshot().histogram("h"));

        // Merging an empty summary must not materialise an empty histogram.
        merged.histogram_merge("untouched", &HistogramSummary::empty());
        assert!(!merged.snapshot().histograms.contains_key("untouched"));
    }

    #[test]
    fn reset_clears_state() {
        let r = MemoryRecorder::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 1.0);
        r.histogram_observe("h", 1.0);
        r.reset();
        assert!(r.snapshot().is_empty());
    }
}
