//! The [`Recorder`] abstraction every instrumented component writes to.
//!
//! Components (traffic ledger, sim clocks, embedding workers, partitioners)
//! hold a `&dyn Recorder` or an `Arc<dyn Recorder>` and emit metrics by
//! name. The default [`NoopRecorder`] makes instrumentation free when
//! telemetry is off; [`crate::MemoryRecorder`] aggregates in memory for
//! snapshots and export.

use crate::snapshot::HistogramSummary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cell holding the current *simulated* time in seconds.
///
/// A `SimClock` publishes its `now` here as it advances; clones share the
/// same cell, so a [`SpanGuard`] (or any other observer) can read the
/// simulated clock without borrowing the `&mut` clock itself.
#[derive(Debug, Clone, Default)]
pub struct SimTimeCell(Arc<AtomicU64>);

impl SimTimeCell {
    /// A cell starting at 0 seconds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the current simulated time.
    pub fn set(&self, secs: f64) {
        self.0.store(secs.to_bits(), Ordering::Relaxed);
    }

    /// The last-published simulated time, in seconds.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sink for metric events. Implementations must be cheap and thread-safe:
/// workers record from inside training loops.
///
/// Metric names are dotted paths (`traffic.bytes.embed_data`); the full
/// taxonomy lives in `TELEMETRY.md` at the repo root.
pub trait Recorder: Send + Sync {
    /// Adds `value` to the named monotonic counter.
    fn counter_add(&self, name: &str, value: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge_set(&self, name: &str, value: f64);

    /// Records one observation of `value` into the named histogram.
    fn histogram_observe(&self, name: &str, value: f64);

    /// Folds a whole pre-aggregated histogram into the named histogram, as
    /// if every observation behind `summary` had been recorded here. Lets
    /// hot loops accumulate into a local [`HistogramSummary`] and pay the
    /// recorder exactly once per epoch. Recorders that do not aggregate
    /// (the no-op) ignore it.
    fn histogram_merge(&self, name: &str, summary: &HistogramSummary) {
        let _ = (name, summary);
    }

    /// Starts a wall-clock span; its duration in seconds is recorded into
    /// the histogram `name` when the returned guard drops.
    fn span(&self, name: &str) -> SpanGuard<'_>
    where
        Self: Sized,
    {
        SpanGuard::new(self, name)
    }

    /// Starts a span that measures **simulated** time read from `clock`
    /// instead of wall time, so span histograms agree with trace
    /// durations. The clock's publisher must keep the cell current while
    /// the span is open.
    fn span_with_clock(&self, name: &str, clock: SimTimeCell) -> SpanGuard<'_>
    where
        Self: Sized,
    {
        SpanGuard::with_clock(self, name, clock)
    }
}

/// RAII timer produced by [`Recorder::span`]. On drop, observes the
/// elapsed wall-clock seconds into the recorder's histogram — or, when a
/// simulated clock is attached ([`Recorder::span_with_clock`]), the
/// elapsed *simulated* seconds.
pub struct SpanGuard<'a> {
    recorder: &'a dyn Recorder,
    name: String,
    start: Instant,
    sim: Option<(SimTimeCell, f64)>,
}

impl<'a> SpanGuard<'a> {
    /// Starts timing now (wall clock).
    pub fn new(recorder: &'a dyn Recorder, name: &str) -> Self {
        Self {
            recorder,
            name: name.to_string(),
            start: Instant::now(),
            sim: None,
        }
    }

    /// Starts timing now against the simulated clock in `clock`.
    pub fn with_clock(recorder: &'a dyn Recorder, name: &str, clock: SimTimeCell) -> Self {
        let start_sim = clock.get();
        Self {
            recorder,
            name: name.to_string(),
            start: Instant::now(),
            sim: Some((clock, start_sim)),
        }
    }

    /// Simulated start time in seconds, when a clock is attached.
    pub fn sim_start_secs(&self) -> Option<f64> {
        self.sim.as_ref().map(|(_, start)| *start)
    }

    /// Seconds elapsed so far: simulated when a clock is attached, wall
    /// otherwise.
    pub fn elapsed_secs(&self) -> f64 {
        match &self.sim {
            Some((clock, start)) => clock.get() - start,
            None => self.start.elapsed().as_secs_f64(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.histogram_observe(&self.name, self.elapsed_secs());
    }
}

/// Recorder that drops everything. The default when telemetry is off:
/// every method is an empty inline-able body, so instrumented hot loops
/// pay only a virtual call (or nothing, when monomorphised).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &str, _value: u64) {}
    fn gauge_set(&self, _name: &str, _value: f64) {}
    fn histogram_observe(&self, _name: &str, _value: f64) {}
}

/// Forwarding impls so `Arc<MemoryRecorder>` / boxed recorders plug in
/// anywhere a `Recorder` is expected.
impl<R: Recorder + ?Sized> Recorder for Arc<R> {
    fn counter_add(&self, name: &str, value: u64) {
        (**self).counter_add(name, value);
    }
    fn gauge_set(&self, name: &str, value: f64) {
        (**self).gauge_set(name, value);
    }
    fn histogram_observe(&self, name: &str, value: f64) {
        (**self).histogram_observe(name, value);
    }
    fn histogram_merge(&self, name: &str, summary: &HistogramSummary) {
        (**self).histogram_merge(name, summary);
    }
}

impl<R: Recorder + ?Sized> Recorder for &R {
    fn counter_add(&self, name: &str, value: u64) {
        (**self).counter_add(name, value);
    }
    fn gauge_set(&self, name: &str, value: f64) {
        (**self).gauge_set(name, value);
    }
    fn histogram_observe(&self, name: &str, value: f64) {
        (**self).histogram_observe(name, value);
    }
    fn histogram_merge(&self, name: &str, summary: &HistogramSummary) {
        (**self).histogram_merge(name, summary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRecorder;

    #[test]
    fn noop_accepts_everything() {
        let r = NoopRecorder;
        r.counter_add("a", 1);
        r.gauge_set("b", 2.0);
        r.histogram_observe("c", 3.0);
        drop(r.span("d"));
    }

    #[test]
    fn span_records_elapsed_time() {
        let r = MemoryRecorder::default();
        {
            let _g = r.span("span.test_secs");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = r.snapshot();
        let h = &snap.histograms["span.test_secs"];
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.002, "span too short: {}", h.sum);
    }

    #[test]
    fn span_with_clock_records_simulated_time() {
        let r = MemoryRecorder::default();
        let clock = SimTimeCell::new();
        clock.set(10.0);
        {
            let g = r.span_with_clock("time.batch_secs", clock.clone());
            assert_eq!(g.sim_start_secs(), Some(10.0));
            clock.set(12.5);
            assert!((g.elapsed_secs() - 2.5).abs() < 1e-12);
        }
        let h = r.snapshot().histogram("time.batch_secs");
        assert_eq!(h.count, 1);
        assert!((h.sum - 2.5).abs() < 1e-12, "sim duration, not wall: {}", h.sum);
    }

    #[test]
    fn arc_and_ref_forward() {
        let r = Arc::new(MemoryRecorder::default());
        r.counter_add("x", 2);
        let as_ref: &MemoryRecorder = &r;
        as_ref.counter_add("x", 3);
        assert_eq!(r.snapshot().counter("x"), 5);
    }
}
