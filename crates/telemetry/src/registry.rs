//! Registry aggregating per-worker recorders into one view.

use crate::memory::MemoryRecorder;
use crate::snapshot::TelemetrySnapshot;
use std::sync::Arc;

/// Owns one [`MemoryRecorder`] per worker plus a global one for metrics
/// not attributable to a single worker (partitioning, dataset I/O, the
/// driver loop). Worker recorders are handed out as `Arc`s, so threads
/// record without any cross-worker contention; [`MetricsRegistry::snapshot`]
/// merges everything after the fact.
#[derive(Debug)]
pub struct MetricsRegistry {
    global: Arc<MemoryRecorder>,
    workers: Vec<Arc<MemoryRecorder>>,
}

impl MetricsRegistry {
    /// Registry for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            global: Arc::new(MemoryRecorder::new()),
            workers: (0..num_workers)
                .map(|_| Arc::new(MemoryRecorder::new()))
                .collect(),
        }
    }

    /// Number of per-worker recorders.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The global (worker-agnostic) recorder.
    pub fn global(&self) -> Arc<MemoryRecorder> {
        Arc::clone(&self.global)
    }

    /// The recorder for `worker`.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn worker(&self, worker: usize) -> Arc<MemoryRecorder> {
        Arc::clone(&self.workers[worker])
    }

    /// Snapshot of a single worker's metrics.
    pub fn worker_snapshot(&self, worker: usize) -> TelemetrySnapshot {
        self.workers[worker].snapshot()
    }

    /// Merged snapshot: global metrics plus every worker's, with counters
    /// summed and histograms combined across workers.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut merged = self.global.snapshot();
        for w in &self.workers {
            merged.merge(&w.snapshot());
        }
        merged
    }

    /// Clears every recorder (global and per-worker).
    pub fn reset(&self) {
        self.global.reset();
        for w in &self.workers {
            w.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn snapshot_merges_workers_and_global() {
        let reg = MetricsRegistry::new(3);
        reg.global().counter_add("partition.moves", 5);
        for (i, w) in (0..3).map(|i| (i, reg.worker(i))) {
            w.counter_add("traffic.bytes.embed_data", 10 * (i as u64 + 1));
            w.histogram_observe("time.compute_secs", 1.0);
        }
        let s = reg.snapshot();
        assert_eq!(s.counter("partition.moves"), 5);
        assert_eq!(s.counter("traffic.bytes.embed_data"), 60);
        assert_eq!(s.histogram("time.compute_secs").count, 3);
        // Per-worker views stay separate.
        assert_eq!(reg.worker_snapshot(1).counter("traffic.bytes.embed_data"), 20);
        assert_eq!(reg.worker_snapshot(1).counter("partition.moves"), 0);
    }

    #[test]
    fn workers_record_concurrently() {
        let reg = MetricsRegistry::new(4);
        std::thread::scope(|scope| {
            for i in 0..4 {
                let rec = reg.worker(i);
                scope.spawn(move || {
                    for _ in 0..500 {
                        rec.counter_add("ops", 1);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("ops"), 2000);
    }
}
