//! Point-in-time views of recorded metrics.

use crate::json::Json;
use std::collections::BTreeMap;

/// Number of fixed log-spaced percentile bins: one underflow bin
/// (values `< BIN_LO`, including 0 and negatives), 64 bins spanning
/// `BIN_LO..BIN_HI` at 4 per decade, and one overflow bin.
const NUM_BINS: usize = 66;
/// Lower edge of the log-spaced range.
const BIN_LO: f64 = 1e-9;
/// Upper edge of the log-spaced range.
const BIN_HI: f64 = 1e7;
/// Log-spaced bin resolution.
const BINS_PER_DECADE: f64 = 4.0;

/// Aggregate view of one histogram: exact count/sum/min/max plus fixed
/// log-spaced bins for p50/p95/p99 estimates. Estimates are accurate to
/// one bin width (a factor of `10^(1/4) ≈ 1.78`) within
/// `[1e-9, 1e7)` and clamped to the exact `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Log-spaced observation counts backing the percentile estimates.
    pub bins: [u64; NUM_BINS],
}

impl HistogramSummary {
    /// Summary of zero observations.
    pub const fn empty() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            bins: [0; NUM_BINS],
        }
    }

    fn bin_index(value: f64) -> usize {
        if value.is_nan() || value < BIN_LO {
            // NaN, negatives, zero, and sub-BIN_LO values underflow.
            return 0;
        }
        if value >= BIN_HI {
            return NUM_BINS - 1;
        }
        let i = ((value / BIN_LO).log10() * BINS_PER_DECADE).floor() as usize;
        (i + 1).min(NUM_BINS - 2)
    }

    /// Geometric midpoint of a log-spaced bin, the representative value
    /// a percentile landing in that bin reports.
    fn bin_value(&self, index: usize) -> f64 {
        if index == 0 {
            return self.min;
        }
        if index == NUM_BINS - 1 {
            return self.max;
        }
        BIN_LO * 10f64.powf((index as f64 - 0.5) / BINS_PER_DECADE)
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.bins[Self::bin_index(value)] += 1;
    }

    /// Combines with another summary (as if both observation streams had
    /// gone into one histogram).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            *mine += theirs;
        }
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`), or `None` when no value has
    /// been observed. Single-sample and constant streams report the exact
    /// observed value; everything else is a log-bin estimate clamped to
    /// the exact `[min, max]`.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // Degenerate distributions have an exact answer — never report a
        // bin midpoint for them.
        if self.count == 1 || self.min == self.max {
            return Some(self.min);
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, n) in self.bins.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(self.bin_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Estimated `q`-quantile as a plain `f64`; 0.0 when empty. Prefer
    /// [`Self::try_quantile`] where "no data" must stay distinguishable
    /// from "observed zero" (the JSON exporter renders empties as `null`).
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// Estimated median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl Default for HistogramSummary {
    fn default() -> Self {
        Self::empty()
    }
}

/// An immutable snapshot of every metric a recorder (or a whole registry)
/// has seen. Sorted maps make output deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl TelemetrySnapshot {
    /// Value of a counter, 0 if never written.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, if ever written.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, empty if never observed.
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.histograms
            .get(name)
            .copied()
            .unwrap_or_else(HistogramSummary::empty)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Folds `other` into `self`: counters add, histograms combine, gauges
    /// take `other`'s value (last write wins).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSummary::empty)
                .merge(h);
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Converts to a JSON document (used by the JSONL exporter).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::U64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::F64(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    // An empty histogram has no min/mean/percentiles; null
                    // keeps "no data" distinguishable from "observed 0.0".
                    let stat = |v: Option<f64>| v.map_or(Json::Null, Json::F64);
                    let nonempty = h.count > 0;
                    (
                        k.clone(),
                        Json::obj([
                            ("count", Json::U64(h.count)),
                            ("sum", Json::F64(h.sum)),
                            ("min", stat(nonempty.then_some(h.min))),
                            ("max", stat(nonempty.then_some(h.max))),
                            ("mean", stat(nonempty.then(|| h.mean()))),
                            ("p50", stat(h.try_quantile(0.50))),
                            ("p95", stat(h.try_quantile(0.95))),
                            ("p99", stat(h.try_quantile(0.99))),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// Renders a human-readable table of every metric, sorted by name.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!("{:<width$}  value\n", "metric"));
        out.push_str(&format!("{:-<width$}  -----\n", ""));
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<width$}  {v:.6}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  n={} sum={:.6} mean={:.6} p50={:.6} p95={:.6} p99={:.6}\n",
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        s.counters.insert("traffic.bytes.embed_data".into(), 100);
        s.counters.insert("traffic.bytes.allreduce".into(), 40);
        s.gauges.insert("clock.now_secs".into(), 1.5);
        let mut h = HistogramSummary::empty();
        h.observe(2.0);
        h.observe(4.0);
        s.histograms.insert("time.compute_secs".into(), h);
        s
    }

    #[test]
    fn merge_adds_counters_and_combines_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("traffic.bytes.embed_data"), 200);
        let h = a.histogram("time.compute_secs");
        assert_eq!(h.count, 4);
        assert!((h.sum - 12.0).abs() < 1e-12);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_sum_covers_exactly_the_prefix() {
        let s = sample();
        assert_eq!(s.counter_prefix_sum("traffic.bytes."), 140);
        assert_eq!(s.counter_prefix_sum("traffic.bytes.embed"), 100);
        assert_eq!(s.counter_prefix_sum("nothing."), 0);
    }

    #[test]
    fn json_round_trips_key_facts() {
        let rendered = sample().to_json().render();
        assert!(rendered.contains(r#""traffic.bytes.embed_data":100"#), "{rendered}");
        assert!(rendered.contains(r#""count":2"#), "{rendered}");
        assert!(rendered.contains(r#""mean":3.0"#), "{rendered}");
    }

    #[test]
    fn quantiles_are_bin_accurate() {
        // One log-spaced bin is a factor of 10^(1/4) ≈ 1.78 wide; the
        // estimate must land within one bin width of the exact quantile on
        // each side, across distributions spanning several decades.
        let tol = 10f64.powf(1.0 / 4.0);
        let uniform: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        let geometric: Vec<f64> = (0..600).map(|i| 1e-6 * 1.05f64.powi(i)).collect();
        for values in [uniform, geometric] {
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let mut h = HistogramSummary::empty();
            for v in &values {
                h.observe(*v);
            }
            for q in [0.50, 0.95, 0.99] {
                let exact = sorted[((q * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1)];
                let est = h.quantile(q);
                assert!(
                    est >= exact / tol && est <= exact * tol,
                    "q={q}: estimate {est} off by more than one bin from {exact}"
                );
            }
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_range_and_handle_edges() {
        // A single sample is exact, not a bin midpoint — even at a value
        // far from any bin center.
        let mut single = HistogramSummary::empty();
        single.observe(3.0);
        assert_eq!(single.p50(), 3.0);
        assert_eq!(single.p99(), 3.0);
        assert_eq!(single.try_quantile(0.5), Some(3.0));

        // Constant streams are exact too (min == max short-circuit).
        let mut constant = HistogramSummary::empty();
        for _ in 0..10 {
            constant.observe(7.3);
        }
        assert_eq!(constant.p50(), 7.3);
        assert_eq!(constant.p95(), 7.3);

        let mut zeros = HistogramSummary::empty();
        zeros.observe(0.0);
        zeros.observe(0.0);
        assert_eq!(zeros.p50(), 0.0);
        assert_eq!(zeros.p99(), 0.0);

        // Empty: no data, not "observed zero".
        assert_eq!(HistogramSummary::empty().try_quantile(0.95), None);
        assert_eq!(HistogramSummary::empty().p95(), 0.0);

        let mut merged = HistogramSummary::empty();
        for _ in 0..95 {
            merged.observe(1.0);
        }
        let mut tail = HistogramSummary::empty();
        for _ in 0..5 {
            tail.observe(100.0);
        }
        merged.merge(&tail);
        assert!(merged.p50() < 2.0, "median near 1: {}", merged.p50());
        assert!(merged.p99() > 50.0, "p99 near the tail: {}", merged.p99());
    }

    #[test]
    fn empty_histogram_exports_null_statistics() {
        let mut s = TelemetrySnapshot::default();
        s.histograms.insert("empty.hist".into(), HistogramSummary::empty());
        let rendered = s.to_json().render();
        assert!(
            rendered.contains(
                r#""empty.hist":{"count":0,"sum":0.0,"min":null,"max":null,"mean":null,"p50":null,"p95":null,"p99":null}"#
            ),
            "{rendered}"
        );
    }

    #[test]
    fn table_lists_every_metric() {
        let t = sample().render_table();
        for name in [
            "traffic.bytes.embed_data",
            "traffic.bytes.allreduce",
            "clock.now_secs",
            "time.compute_secs",
        ] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }
}
