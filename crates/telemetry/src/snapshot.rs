//! Point-in-time views of recorded metrics.

use crate::json::Json;
use std::collections::BTreeMap;

/// Aggregate view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    /// Summary of zero observations.
    pub const fn empty() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Combines with another summary (as if both observation streams had
    /// gone into one histogram).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistogramSummary {
    fn default() -> Self {
        Self::empty()
    }
}

/// An immutable snapshot of every metric a recorder (or a whole registry)
/// has seen. Sorted maps make output deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl TelemetrySnapshot {
    /// Value of a counter, 0 if never written.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, if ever written.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, empty if never observed.
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.histograms
            .get(name)
            .copied()
            .unwrap_or_else(HistogramSummary::empty)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Folds `other` into `self`: counters add, histograms combine, gauges
    /// take `other`'s value (last write wins).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSummary::empty)
                .merge(h);
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Converts to a JSON document (used by the JSONL exporter).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::U64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::F64(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count", Json::U64(h.count)),
                            ("sum", Json::F64(h.sum)),
                            ("min", Json::F64(if h.count == 0 { 0.0 } else { h.min })),
                            ("max", Json::F64(if h.count == 0 { 0.0 } else { h.max })),
                            ("mean", Json::F64(h.mean())),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// Renders a human-readable table of every metric, sorted by name.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!("{:<width$}  value\n", "metric"));
        out.push_str(&format!("{:-<width$}  -----\n", ""));
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<width$}  {v:.6}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  n={} sum={:.6} mean={:.6}\n",
                h.count,
                h.sum,
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        s.counters.insert("traffic.bytes.embed_data".into(), 100);
        s.counters.insert("traffic.bytes.allreduce".into(), 40);
        s.gauges.insert("clock.now_secs".into(), 1.5);
        let mut h = HistogramSummary::empty();
        h.observe(2.0);
        h.observe(4.0);
        s.histograms.insert("time.compute_secs".into(), h);
        s
    }

    #[test]
    fn merge_adds_counters_and_combines_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("traffic.bytes.embed_data"), 200);
        let h = a.histogram("time.compute_secs");
        assert_eq!(h.count, 4);
        assert!((h.sum - 12.0).abs() < 1e-12);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_sum_covers_exactly_the_prefix() {
        let s = sample();
        assert_eq!(s.counter_prefix_sum("traffic.bytes."), 140);
        assert_eq!(s.counter_prefix_sum("traffic.bytes.embed"), 100);
        assert_eq!(s.counter_prefix_sum("nothing."), 0);
    }

    #[test]
    fn json_round_trips_key_facts() {
        let rendered = sample().to_json().render();
        assert!(rendered.contains(r#""traffic.bytes.embed_data":100"#), "{rendered}");
        assert!(rendered.contains(r#""count":2"#), "{rendered}");
        assert!(rendered.contains(r#""mean":3.0"#), "{rendered}");
    }

    #[test]
    fn table_lists_every_metric() {
        let t = sample().render_table();
        for name in [
            "traffic.bytes.embed_data",
            "traffic.bytes.allreduce",
            "clock.now_secs",
            "time.compute_secs",
        ] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }
}
