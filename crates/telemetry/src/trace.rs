//! Event tracing: typed spans in bounded per-track ring buffers, exported
//! as Chrome trace-event JSON.
//!
//! Aggregate counters (the [`crate::Recorder`] pipeline) answer *how much*;
//! traces answer *when*. A [`TraceCollector`] plugs in beside the recorder
//! registry and keeps one bounded ring buffer per worker, per interconnect
//! link class, and one for host-side driver work. Each [`TraceEvent`]
//! carries the **simulated** start time and duration (from `SimClock` /
//! the cost model) in microseconds, plus the wall-clock time it was
//! recorded, a metric-style dotted name, and key/value arguments.
//!
//! [`TraceCollector::to_chrome_json`] renders the buffers in the Chrome
//! trace-event format (the `{"traceEvents":[...]}` JSON object understood
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)): one
//! thread track per worker, one per link class, `ph:"X"` complete events
//! for spans and `ph:"i"` instants for zero-duration decision events.

use crate::error::HetGmpError;
use crate::export::JsonlWriter;
use crate::json::Json;
use crate::manifest::RunManifest;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How much detail a collector keeps. Ordered: `Batch < Sync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Coarse spans only: trainer epochs and batches, per-link transfers,
    /// partitioner rounds.
    Batch,
    /// Everything in `Batch` plus per-batch read/sync/deferral decision
    /// instants from the embedding workers.
    Sync,
}

impl TraceLevel {
    /// Parses a `--trace-level` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "batch" => Some(Self::Batch),
            "sync" => Some(Self::Sync),
            _ => None,
        }
    }

    /// The CLI spelling of this level.
    pub fn label(self) -> &'static str {
        match self {
            Self::Batch => "batch",
            Self::Sync => "sync",
        }
    }
}

/// Which timeline row an event belongs to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceTrack {
    /// A training worker's timeline.
    Worker(usize),
    /// An interconnect link class timeline; the label comes from the
    /// topology (`nvlink`, `pcie3`, `qpi`, `ethernet_10g`, …).
    Link(String),
    /// Host-side work that happens outside any worker, e.g. partitioner
    /// refinement rounds (timestamps are wall-clock, not simulated).
    Driver,
}

/// One traced span (or instant, when `dur_us == 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Timeline row.
    pub track: TraceTrack,
    /// Dotted event name from [`crate::names`], e.g. `trace.batch`.
    pub name: String,
    /// Simulated start time in microseconds.
    pub ts_us: f64,
    /// Simulated duration in microseconds; 0 marks an instant event.
    pub dur_us: f64,
    /// Wall-clock microseconds since the collector was created.
    pub wall_us: u64,
    /// Key/value arguments shown in the trace viewer.
    pub args: Vec<(String, Json)>,
}

/// Fixed-capacity ring: keeps the newest events, counts what it dropped.
struct Ring {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Thread-safe trace sink with one bounded ring buffer per track.
///
/// Worker rings are per-worker mutexes, so concurrent workers never
/// contend with each other; link and driver rings share one lock each.
/// The collector also carries a per-worker *simulated now* cell that the
/// trainer refreshes each batch, so components without clock access (the
/// embedding workers, the traffic ledger) can stamp instant events at the
/// right simulated time.
pub struct TraceCollector {
    level: TraceLevel,
    capacity: usize,
    epoch: Instant,
    workers: Vec<Mutex<Ring>>,
    worker_now_us: Vec<AtomicU64>,
    links: Mutex<BTreeMap<String, Ring>>,
    driver: Mutex<Ring>,
    manifest: Mutex<Option<RunManifest>>,
}

impl TraceCollector {
    /// Default per-track ring capacity.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Collector for `num_workers` workers at the given detail level.
    pub fn new(num_workers: usize, level: TraceLevel) -> Self {
        Self::with_capacity(num_workers, level, Self::DEFAULT_CAPACITY)
    }

    /// As [`TraceCollector::new`] with an explicit per-track ring capacity.
    pub fn with_capacity(num_workers: usize, level: TraceLevel, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            level,
            capacity,
            epoch: Instant::now(),
            workers: (0..num_workers).map(|_| Mutex::new(Ring::new(capacity))).collect(),
            worker_now_us: (0..num_workers).map(|_| AtomicU64::new(0)).collect(),
            links: Mutex::new(BTreeMap::new()),
            driver: Mutex::new(Ring::new(capacity)),
            manifest: Mutex::new(None),
        }
    }

    /// Attaches the run manifest stamped into the exported trace's
    /// `otherData.manifest`. The trainer calls this at run start; the last
    /// attached manifest wins.
    pub fn attach_manifest(&self, manifest: RunManifest) {
        *self.manifest.lock() = Some(manifest);
    }

    /// The attached run manifest, if any.
    pub fn manifest(&self) -> Option<RunManifest> {
        self.manifest.lock().clone()
    }

    /// The collector's detail level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether events at `level` should be recorded.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level <= self.level
    }

    /// Number of worker tracks.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Refreshes worker `w`'s simulated clock, in seconds. Called by the
    /// trainer at batch boundaries so instant events land at the right ts.
    pub fn set_worker_time(&self, w: usize, sim_secs: f64) {
        if let Some(cell) = self.worker_now_us.get(w) {
            cell.store((sim_secs * 1e6).to_bits(), Ordering::Relaxed);
        }
    }

    /// Worker `w`'s last-stamped simulated time, in microseconds.
    pub fn worker_time_us(&self, w: usize) -> f64 {
        self.worker_now_us
            .get(w)
            .map(|cell| f64::from_bits(cell.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }

    fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn make_args(args: &[(&str, Json)]) -> Vec<(String, Json)> {
        args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    /// Records a span on worker `w`'s track. Times are simulated seconds.
    pub fn worker_span(
        &self,
        w: usize,
        name: &str,
        start_secs: f64,
        dur_secs: f64,
        args: &[(&str, Json)],
    ) {
        let Some(ring) = self.workers.get(w) else { return };
        let event = TraceEvent {
            track: TraceTrack::Worker(w),
            name: name.to_string(),
            ts_us: start_secs * 1e6,
            dur_us: dur_secs * 1e6,
            wall_us: self.wall_us(),
            args: Self::make_args(args),
        };
        ring.lock().push(event);
    }

    /// Records an instant decision event on worker `w`'s track at the
    /// worker's last-stamped simulated time. Only kept at
    /// [`TraceLevel::Sync`].
    pub fn worker_instant(&self, w: usize, name: &str, args: &[(&str, Json)]) {
        if !self.enabled(TraceLevel::Sync) {
            return;
        }
        let Some(ring) = self.workers.get(w) else { return };
        let event = TraceEvent {
            track: TraceTrack::Worker(w),
            name: name.to_string(),
            ts_us: self.worker_time_us(w),
            dur_us: 0.0,
            wall_us: self.wall_us(),
            args: Self::make_args(args),
        };
        ring.lock().push(event);
    }

    /// Records an occupancy span on the link-class track `label`.
    /// Times are simulated seconds.
    pub fn link_span(
        &self,
        label: &str,
        name: &str,
        start_secs: f64,
        dur_secs: f64,
        args: &[(&str, Json)],
    ) {
        let event = TraceEvent {
            track: TraceTrack::Link(label.to_string()),
            name: name.to_string(),
            ts_us: start_secs * 1e6,
            dur_us: dur_secs * 1e6,
            wall_us: self.wall_us(),
            args: Self::make_args(args),
        };
        let mut links = self.links.lock();
        links
            .entry(label.to_string())
            .or_insert_with(|| Ring::new(self.capacity))
            .push(event);
    }

    /// Records a span on the driver track. Driver timestamps are
    /// **wall-clock** seconds (the driver runs outside the simulation).
    pub fn driver_span(&self, name: &str, start_secs: f64, dur_secs: f64, args: &[(&str, Json)]) {
        let event = TraceEvent {
            track: TraceTrack::Driver,
            name: name.to_string(),
            ts_us: start_secs * 1e6,
            dur_us: dur_secs * 1e6,
            wall_us: self.wall_us(),
            args: Self::make_args(args),
        };
        self.driver.lock().push(event);
    }

    /// Total events currently buffered.
    pub fn len(&self) -> usize {
        let mut n = 0;
        for w in &self.workers {
            n += w.lock().events.len();
        }
        n += self.links.lock().values().map(|r| r.events.len()).sum::<usize>();
        n += self.driver.lock().events.len();
        n
    }

    /// `true` when no events have been kept.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from full rings since creation.
    pub fn dropped(&self) -> u64 {
        let mut n = 0;
        for w in &self.workers {
            n += w.lock().dropped;
        }
        n += self.links.lock().values().map(|r| r.dropped).sum::<u64>();
        n += self.driver.lock().dropped;
        n
    }

    /// Clones every buffered event, ordered by track then insertion.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for w in &self.workers {
            out.extend(w.lock().events.iter().cloned());
        }
        for ring in self.links.lock().values() {
            out.extend(ring.events.iter().cloned());
        }
        out.extend(self.driver.lock().events.iter().cloned());
        out
    }

    /// Link-class labels that have at least one event, sorted.
    pub fn link_labels(&self) -> Vec<String> {
        self.links.lock().keys().cloned().collect()
    }

    /// Renders the Chrome trace-event JSON document.
    ///
    /// Track layout: `pid 0` holds one thread per worker, `pid 1` one
    /// thread per link class (sorted by label), `pid 2` the driver.
    /// `ts`/`dur` are simulated microseconds (wall-clock for the driver);
    /// each event also carries `wall_us` in its args.
    ///
    /// With zero recorded events the output is still a valid, loadable
    /// trace — metadata-only: the workers `process_name`, one
    /// `thread_name` per configured worker (all `ph:"M"`), plus
    /// `displayTimeUnit` and `otherData`. Link and driver tracks appear
    /// only once they hold events.
    pub fn to_chrome_json(&self) -> Json {
        const PID_WORKERS: u64 = 0;
        const PID_LINKS: u64 = 1;
        const PID_DRIVER: u64 = 2;

        let mut events: Vec<Json> = Vec::new();
        let meta = |pid: u64, tid: u64, kind: &str, value: &str| {
            Json::obj([
                ("ph", Json::from("M")),
                ("pid", Json::U64(pid)),
                ("tid", Json::U64(tid)),
                ("name", Json::from(kind)),
                ("args", Json::obj([("name", Json::from(value))])),
            ])
        };

        events.push(meta(PID_WORKERS, 0, "process_name", "workers"));
        for w in 0..self.workers.len() {
            events.push(meta(PID_WORKERS, w as u64, "thread_name", &format!("worker {w}")));
        }

        let links = self.links.lock();
        let link_tid: BTreeMap<&String, u64> = links
            .keys()
            .enumerate()
            .map(|(i, label)| (label, i as u64))
            .collect();
        if !links.is_empty() {
            events.push(meta(PID_LINKS, 0, "process_name", "links"));
            for (label, tid) in &link_tid {
                events.push(meta(PID_LINKS, *tid, "thread_name", &format!("link {label}")));
            }
        }
        let driver = self.driver.lock();
        if !driver.events.is_empty() {
            events.push(meta(PID_DRIVER, 0, "process_name", "driver"));
            events.push(meta(PID_DRIVER, 0, "thread_name", "driver"));
        }

        let mut emit = |event: &TraceEvent, pid: u64, tid: u64| {
            let instant = event.dur_us == 0.0;
            let mut members = vec![
                ("name".to_string(), Json::from(event.name.as_str())),
                ("ph".to_string(), Json::from(if instant { "i" } else { "X" })),
                ("pid".to_string(), Json::U64(pid)),
                ("tid".to_string(), Json::U64(tid)),
                ("ts".to_string(), Json::F64(event.ts_us)),
            ];
            if instant {
                // Instant scope: thread.
                members.push(("s".to_string(), Json::from("t")));
            } else {
                members.push(("dur".to_string(), Json::F64(event.dur_us)));
            }
            let mut args = event.args.clone();
            args.push(("wall_us".to_string(), Json::U64(event.wall_us)));
            members.push(("args".to_string(), Json::Obj(args)));
            events.push(Json::Obj(members));
        };

        for (w, ring) in self.workers.iter().enumerate() {
            for event in &ring.lock().events {
                emit(event, PID_WORKERS, w as u64);
            }
        }
        for (label, ring) in links.iter() {
            let tid = link_tid[label];
            for event in &ring.events {
                emit(event, PID_LINKS, tid);
            }
        }
        for event in &driver.events {
            emit(event, PID_DRIVER, 0);
        }
        drop(driver);
        drop(links);

        let mut other_data = vec![
            ("tool".to_string(), Json::from("het-gmp")),
            ("trace_level".to_string(), Json::from(self.level.label())),
            ("dropped_events".to_string(), Json::U64(self.dropped())),
        ];
        if let Some(m) = self.manifest.lock().as_ref() {
            other_data.push(("manifest".to_string(), m.to_json()));
        }

        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
            ("otherData", Json::Obj(other_data)),
        ])
    }

    /// Writes the Chrome trace JSON to `path` (`-` = stdout). The file is
    /// a single-line JSON document loadable by `chrome://tracing` and
    /// Perfetto.
    pub fn write_chrome_trace(&self, path: &str) -> Result<(), HetGmpError> {
        let mut w = JsonlWriter::create(path)?;
        w.write_record(&self.to_chrome_json())?;
        w.flush()
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("level", &self.level)
            .field("capacity", &self.capacity)
            .field("workers", &self.workers.len())
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(TraceLevel::Batch < TraceLevel::Sync);
        assert_eq!(TraceLevel::parse("batch"), Some(TraceLevel::Batch));
        assert_eq!(TraceLevel::parse("sync"), Some(TraceLevel::Sync));
        assert_eq!(TraceLevel::parse("debug"), None);
        let c = TraceCollector::new(1, TraceLevel::Batch);
        assert!(c.enabled(TraceLevel::Batch));
        assert!(!c.enabled(TraceLevel::Sync));
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let c = TraceCollector::with_capacity(1, TraceLevel::Batch, 4);
        for i in 0..10 {
            c.worker_span(0, "trace.batch", i as f64, 1.0, &[]);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.dropped(), 6);
        // The newest events survive.
        let kept: Vec<f64> = c.events().iter().map(|e| e.ts_us / 1e6).collect();
        assert_eq!(kept, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn instants_use_the_stamped_worker_time_and_respect_level() {
        let batch = TraceCollector::new(2, TraceLevel::Batch);
        batch.worker_instant(0, "trace.sync", &[]);
        assert!(batch.is_empty(), "sync instants must be off at batch level");

        let sync = TraceCollector::new(2, TraceLevel::Sync);
        sync.set_worker_time(1, 2.5);
        sync.worker_instant(1, "trace.sync", &[("kind", Json::from("intra"))]);
        let events = sync.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, TraceTrack::Worker(1));
        assert_eq!(events[0].ts_us, 2.5e6);
        assert_eq!(events[0].dur_us, 0.0);
    }

    #[test]
    fn chrome_json_has_one_track_per_worker_and_link() {
        let c = TraceCollector::new(2, TraceLevel::Sync);
        c.worker_span(0, "trace.batch", 0.0, 0.010, &[("batch", Json::U64(0))]);
        c.worker_span(1, "trace.batch", 0.0, 0.012, &[]);
        c.link_span("pcie3", "trace.link.transfer", 0.010, 0.002, &[("bytes", Json::U64(4096))]);
        c.link_span("qpi", "trace.link.transfer", 0.010, 0.003, &[]);
        c.driver_span("trace.partition.round", 0.0, 0.5, &[]);

        let doc = c.to_chrome_json().render();
        assert!(doc.starts_with(r#"{"traceEvents":["#), "{doc}");
        for needle in [
            r#""name":"worker 0""#,
            r#""name":"worker 1""#,
            r#""name":"link pcie3""#,
            r#""name":"link qpi""#,
            r#""name":"driver""#,
            r#""ph":"X""#,
            r#""dur":2000.0"#,     // 0.002 s -> 2000 us on the pcie3 track
            r#""displayTimeUnit":"ms""#,
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn empty_trace_is_valid_and_metadata_only() {
        let c = TraceCollector::new(2, TraceLevel::Batch);
        let doc = Json::parse(&c.to_chrome_json().render()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Pinned shape: workers process_name + one thread_name per worker,
        // nothing else — and every entry is metadata.
        assert_eq!(events.len(), 3, "{doc:?}");
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("M"));
        }
        assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        let other = doc.get("otherData").unwrap();
        assert_eq!(other.get("tool").unwrap().as_str(), Some("het-gmp"));
        assert_eq!(other.get("dropped_events").unwrap().as_u64(), Some(0));
        // No manifest attached -> no manifest key.
        assert!(other.get("manifest").is_none());
    }

    #[test]
    fn attached_manifest_lands_in_other_data() {
        let c = TraceCollector::new(1, TraceLevel::Batch);
        let m = RunManifest::new(7, RunManifest::digest_of("cfg"), 4, 2, 1);
        c.attach_manifest(m.clone());
        assert_eq!(c.manifest(), Some(m.clone()));
        let doc = Json::parse(&c.to_chrome_json().render()).unwrap();
        let back =
            RunManifest::from_json(doc.get("otherData").unwrap().get("manifest").unwrap())
                .unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = std::sync::Arc::new(TraceCollector::new(4, TraceLevel::Sync));
        std::thread::scope(|scope| {
            for w in 0..4 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..100 {
                        c.set_worker_time(w, i as f64);
                        c.worker_span(w, "trace.batch", i as f64, 0.5, &[]);
                        c.worker_instant(w, "trace.read", &[]);
                        c.link_span("ethernet_10g", "trace.link.transfer", i as f64, 0.1, &[]);
                    }
                });
            }
        });
        assert_eq!(c.len(), 4 * 100 * 2 + 400);
        assert_eq!(c.link_labels(), vec!["ethernet_10g".to_string()]);
    }
}
