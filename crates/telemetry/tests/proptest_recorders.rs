//! Property tests for the recorder implementations: a [`MetricsRegistry`]
//! fed concurrently from many worker threads must account for every counter
//! increment exactly once, and [`NoopRecorder`] must accept the identical
//! call stream through the same `dyn Recorder` interface (it is the default
//! sink, so any workload the registry survives it must survive too).

use std::sync::Arc;

use hetgmp_telemetry::{MetricsRegistry, NoopRecorder, Recorder};
use proptest::prelude::*;

/// Strategy: per-worker lists of (metric index, increment) operations.
fn workloads() -> impl Strategy<Value = Vec<Vec<(usize, u64)>>> {
    prop::collection::vec(
        prop::collection::vec((0usize..4, 1u64..1000), 0..50),
        1..6,
    )
}

const METRICS: [&str; 4] = [
    "traffic.bytes.embed_data",
    "traffic.bytes.keys_clocks",
    "embedding.cache.hit",
    "partition.moves",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn registry_counts_every_concurrent_increment(ops in workloads()) {
        let registry = MetricsRegistry::new(ops.len());
        let noop: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        std::thread::scope(|scope| {
            for (w, worker_ops) in ops.iter().enumerate() {
                let rec: Arc<dyn Recorder> = registry.worker(w);
                let noop = Arc::clone(&noop);
                scope.spawn(move || {
                    for &(metric, amount) in worker_ops {
                        rec.counter_add(METRICS[metric], amount);
                        // The noop sink accepts the same stream (and, being
                        // shared across threads, proves Recorder is Sync).
                        noop.counter_add(METRICS[metric], amount);
                    }
                });
            }
        });

        // Expected totals from plain arithmetic over the generated ops.
        let mut expected = [0u64; 4];
        for worker_ops in &ops {
            for &(metric, amount) in worker_ops {
                expected[metric] += amount;
            }
        }
        let snap = registry.snapshot();
        for (i, name) in METRICS.iter().enumerate() {
            prop_assert_eq!(snap.counter(name), expected[i], "metric {}", name);
        }
        // Per-worker snapshots partition the totals exactly.
        for (i, name) in METRICS.iter().enumerate() {
            let per_worker: u64 = (0..ops.len())
                .map(|w| registry.worker_snapshot(w).counter(name))
                .sum();
            prop_assert_eq!(per_worker, expected[i], "per-worker sum of {}", name);
        }
    }
}
