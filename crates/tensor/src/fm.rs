//! Factorization-machine second-order interaction (DeepFM's FM component)
//! and DIN-style target attention pooling.
//!
//! Both operate on *field-structured* input: a batch row is `F` field
//! embeddings of dimension `d` laid out contiguously (`F·d` floats), exactly
//! the layout the embedding layer produces.

use crate::matrix::Matrix;

/// Second-order FM interaction:
/// `y = 0.5 · Σ_d [ (Σ_f v_{f,d})² − Σ_f v_{f,d}² ]` — one scalar per row
/// (Rendle 2010; the pairwise-interaction term of DeepFM).
pub struct FmInteraction {
    fields: usize,
    dim: usize,
    /// Cached per-row per-dim field sums from the forward pass.
    sums: Vec<f32>,
    input: Option<Matrix>,
}

impl FmInteraction {
    /// Creates the layer for `fields` fields of `dim` dims.
    pub fn new(fields: usize, dim: usize) -> Self {
        assert!(fields > 0 && dim > 0);
        Self {
            fields,
            dim,
            sums: Vec::new(),
            input: None,
        }
    }

    /// Forward pass: input `(batch × F·d)` → output `(batch × 1)`.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out);
        self.input = Some(input.clone());
        out
    }

    /// In-place forward — caches only the per-row field sums, not the
    /// input; pair with [`FmInteraction::backward_into`].
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(input.cols(), self.fields * self.dim, "input width mismatch");
        let batch = input.rows();
        out.reset(batch, 1);
        self.sums.clear();
        self.sums.resize(batch * self.dim, 0.0);
        for r in 0..batch {
            let row = input.row(r);
            let sums = &mut self.sums[r * self.dim..(r + 1) * self.dim];
            let mut sq_sum = 0.0f32;
            for f in 0..self.fields {
                let v = &row[f * self.dim..(f + 1) * self.dim];
                for (s, &x) in sums.iter_mut().zip(v) {
                    *s += x;
                    sq_sum += x * x;
                }
            }
            let sum_sq: f32 = sums.iter().map(|&s| s * s).sum();
            out.set(r, 0, 0.5 * (sum_sq - sq_sum));
        }
    }

    /// Backward pass: `dL/dv_{f,d} = g · (Σ_f' v_{f',d} − v_{f,d})`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.input.take().expect("forward before backward");
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(&input, grad_out, &mut grad_in);
        self.input = Some(input);
        grad_in
    }

    /// In-place backward: `input` is the matrix passed to the matching
    /// [`FmInteraction::forward_into`].
    pub fn backward_into(&mut self, input: &Matrix, grad_out: &Matrix, grad_in: &mut Matrix) {
        assert_eq!(grad_out.cols(), 1, "grad must be a column");
        let batch = input.rows();
        grad_in.reset(batch, self.fields * self.dim);
        for r in 0..batch {
            let g = grad_out.get(r, 0);
            let row = input.row(r);
            let sums = &self.sums[r * self.dim..(r + 1) * self.dim];
            let gi = grad_in.row_mut(r);
            for f in 0..self.fields {
                for (d, &sum_d) in sums.iter().enumerate() {
                    let idx = f * self.dim + d;
                    gi[idx] = g * (sum_d - row[idx]);
                }
            }
        }
    }
}

/// DIN-style target attention: field 0 is the *target item*; the remaining
/// `F−1` fields are *behaviours*. Attention weights are a softmax of scaled
/// dot products between the target and each behaviour; the output is
/// `[target ; Σ_f α_f · behaviour_f]` of width `2·d`.
pub struct TargetAttention {
    fields: usize,
    dim: usize,
    /// Cached softmax weights per row (`batch × (F−1)`).
    alphas: Vec<f32>,
    /// Reused per-row scratch: raw scores (forward), `dL/dα` and softmax
    /// score gradients (backward).
    scores: Vec<f32>,
    dalpha: Vec<f32>,
    dscore: Vec<f32>,
    input: Option<Matrix>,
}

impl TargetAttention {
    /// Creates the layer for `fields ≥ 2` fields of `dim` dims.
    pub fn new(fields: usize, dim: usize) -> Self {
        assert!(fields >= 2, "attention needs a target and ≥1 behaviour");
        assert!(dim > 0);
        Self {
            fields,
            dim,
            alphas: Vec::new(),
            scores: Vec::new(),
            dalpha: Vec::new(),
            dscore: Vec::new(),
            input: None,
        }
    }

    /// Output width (`2·dim`).
    pub fn out_dim(&self) -> usize {
        2 * self.dim
    }

    /// Forward: input `(batch × F·d)` → `(batch × 2·d)`.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out);
        self.input = Some(input.clone());
        out
    }

    /// In-place forward — caches only the attention weights, not the
    /// input; pair with [`TargetAttention::backward_into`].
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(input.cols(), self.fields * self.dim, "input width mismatch");
        let batch = input.rows();
        let b_fields = self.fields - 1;
        let scale = 1.0 / (self.dim as f32).sqrt();
        out.reset(batch, 2 * self.dim);
        self.alphas.clear();
        self.alphas.resize(batch * b_fields, 0.0);
        self.scores.clear();
        self.scores.resize(b_fields, 0.0);
        for r in 0..batch {
            let row = input.row(r);
            let target = &row[..self.dim];
            // Scaled dot-product scores → softmax.
            let mut max_score = f32::MIN;
            let scores = &mut self.scores[..];
            for f in 0..b_fields {
                let v = &row[(f + 1) * self.dim..(f + 2) * self.dim];
                let dot: f32 = target.iter().zip(v).map(|(&a, &b)| a * b).sum();
                scores[f] = dot * scale;
                max_score = max_score.max(scores[f]);
            }
            let mut z = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max_score).exp();
                z += *s;
            }
            let alphas = &mut self.alphas[r * b_fields..(r + 1) * b_fields];
            for (a, s) in alphas.iter_mut().zip(scores.iter()) {
                *a = s / z;
            }
            // Pooled behaviour vector.
            let o = out.row_mut(r);
            o[..self.dim].copy_from_slice(target);
            for f in 0..b_fields {
                let v = &row[(f + 1) * self.dim..(f + 2) * self.dim];
                for d in 0..self.dim {
                    o[self.dim + d] += alphas[f] * v[d];
                }
            }
        }
    }

    /// Backward: gradients flow to the target (direct + through the
    /// attention scores) and to every behaviour (weighted + score paths).
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.input.take().expect("forward before backward");
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(&input, grad_out, &mut grad_in);
        self.input = Some(input);
        grad_in
    }

    /// In-place backward: `input` is the matrix passed to the matching
    /// [`TargetAttention::forward_into`].
    pub fn backward_into(&mut self, input: &Matrix, grad_out: &Matrix, grad_in: &mut Matrix) {
        let batch = input.rows();
        let b_fields = self.fields - 1;
        let dim = self.dim;
        let scale = 1.0 / (dim as f32).sqrt();
        grad_in.reset(batch, self.fields * dim);
        self.dalpha.clear();
        self.dalpha.resize(b_fields, 0.0);
        self.dscore.clear();
        self.dscore.resize(b_fields, 0.0);
        for r in 0..batch {
            let row = input.row(r);
            let g = grad_out.row(r);
            let g_target_direct = &g[..dim];
            let g_pooled = &g[dim..];
            let alphas = &self.alphas[r * b_fields..(r + 1) * b_fields];

            // dL/dα_f = g_pooled · v_f
            let dalpha = &mut self.dalpha[..];
            for f in 0..b_fields {
                let v = &row[(f + 1) * dim..(f + 2) * dim];
                dalpha[f] = g_pooled.iter().zip(v).map(|(&a, &b)| a * b).sum();
            }
            // Softmax backward: ds_f = α_f (dα_f − Σ_k α_k dα_k)
            let inner: f32 = alphas.iter().zip(dalpha.iter()).map(|(&a, &da)| a * da).sum();
            let dscore = &mut self.dscore[..];
            for (ds, (&a, &da)) in dscore.iter_mut().zip(alphas.iter().zip(dalpha.iter())) {
                *ds = a * (da - inner);
            }

            let (gi_target, gi_rest) = grad_in.row_mut(r).split_at_mut(dim);
            // Target gradient: direct path + score path (score = scale·t·v).
            gi_target.copy_from_slice(g_target_direct);
            for f in 0..b_fields {
                let v = &row[(f + 1) * dim..(f + 2) * dim];
                for d in 0..dim {
                    gi_target[d] += dscore[f] * scale * v[d];
                }
            }
            // Behaviour gradients: pooled path (α_f·g_pooled) + score path
            // (dscore_f·scale·target).
            let target = &row[..dim];
            for f in 0..b_fields {
                let gv = &mut gi_rest[f * dim..(f + 1) * dim];
                for d in 0..dim {
                    gv[d] = alphas[f] * g_pooled[d] + dscore[f] * scale * target[d];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradcheck(
        mut fwd: impl FnMut(&Matrix) -> f32,
        input: &Matrix,
        analytic: &Matrix,
        eps: f32,
        tol: f32,
    ) {
        for i in 0..input.data().len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let num = (fwd(&plus) - fwd(&minus)) / (2.0 * eps);
            let ana = analytic.data()[i];
            assert!(
                (num - ana).abs() < tol.max(0.05 * num.abs()),
                "grad[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn fm_known_value() {
        // 2 fields, dim 2: v0 = (1,2), v1 = (3,4).
        // sums = (4,6); sum_sq = 16+36 = 52; sq_sum = 1+4+9+16 = 30.
        // y = 0.5(52−30) = 11.
        let mut fm = FmInteraction::new(2, 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let y = fm.forward(&x);
        assert_eq!(y.get(0, 0), 11.0);
    }

    #[test]
    fn fm_single_field_is_zero() {
        // With one field there are no pairwise interactions.
        let mut fm = FmInteraction::new(1, 3);
        let x = Matrix::from_vec(1, 3, vec![2.0, -1.0, 0.5]);
        let y = fm.forward(&x);
        assert!(y.get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn fm_gradcheck() {
        let mut fm = FmInteraction::new(3, 2);
        let x = Matrix::from_vec(2, 6, vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1, 1.0, 0.2, -0.4, 0.8, 0.6, -0.9]);
        let _ = fm.forward(&x);
        let g = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let grad = fm.backward(&g);
        gradcheck(
            |inp| {
                let mut probe = FmInteraction::new(3, 2);
                probe.forward(inp).data().iter().sum()
            },
            &x,
            &grad,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn attention_shapes_and_weights_sum_to_one() {
        let mut att = TargetAttention::new(4, 3);
        let x = Matrix::from_vec(2, 12, (0..24).map(|i| (i as f32) * 0.1 - 1.0).collect());
        let y = att.forward(&x);
        assert_eq!(y.cols(), 6);
        assert_eq!(y.rows(), 2);
        for r in 0..2 {
            let alphas = &att.alphas[r * 3..(r + 1) * 3];
            let sum: f32 = alphas.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(alphas.iter().all(|&a| a >= 0.0));
        }
        // Target passes through unchanged.
        assert_eq!(&y.row(0)[..3], &x.row(0)[..3]);
    }

    #[test]
    fn attention_prefers_similar_behaviour() {
        // Behaviour 0 equals the target; behaviour 1 is opposite. α_0 > α_1.
        let mut att = TargetAttention::new(3, 2);
        let x = Matrix::from_vec(1, 6, vec![1.0, 0.5, 1.0, 0.5, -1.0, -0.5]);
        let _ = att.forward(&x);
        assert!(att.alphas[0] > att.alphas[1]);
    }

    #[test]
    fn attention_gradcheck() {
        let mut att = TargetAttention::new(3, 2);
        let x = Matrix::from_vec(2, 6, vec![0.4, -0.2, 0.9, 0.1, -0.5, 0.7, -0.3, 0.8, 0.2, -0.6, 0.5, 0.3]);
        let _ = att.forward(&x);
        let g = Matrix::from_vec(2, 4, vec![1.0; 8]);
        let grad = att.backward(&g);
        gradcheck(
            |inp| {
                let mut probe = TargetAttention::new(3, 2);
                probe.forward(inp).data().iter().sum()
            },
            &x,
            &grad,
            1e-3,
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "attention needs a target")]
    fn attention_needs_two_fields() {
        TargetAttention::new(1, 4);
    }
}
