//! Cache-blocked, autovectorization-friendly f32 GEMM kernels.
//!
//! One shared microkernel ([`tile_fma`]) computes an `R × C` tile of the
//! output in registers; the three product variants the layers need — `A·B`,
//! `Aᵀ·B`, `A·Bᵀ` — differ only in how they gather the `R` A-operands and
//! `C` B-operands per depth step. Strided operands are repacked into small
//! fixed-size stack panels (at most [`KC`] depth steps at a time) so the
//! inner loop reads both operands contiguously with no bounds checks.
//! Epilogues fuse bias addition and ReLU so a dense layer's forward pass is
//! one pass over the output.
//!
//! On x86-64 the public entry points dispatch at runtime to an AVX2 build
//! of the same safe body with a wider register tile (4×16 instead of the
//! baseline 4×8). The `unsafe` here is confined to the three dispatch call
//! sites (each guarded by `is_x86_feature_detected!("avx2")` on the line
//! above) plus the disjoint row-panel splits feeding [`crate::pool`] — the
//! only other `unsafe` in the workspace.
//!
//! When a [`crate::pool::GemmPool`] is installed on the calling thread
//! (`GemmPool::install`), products above [`PAR_MKN_THRESHOLD`] are split
//! into disjoint output-row panels executed across the pool. Each panel
//! runs the ordinary sequential kernel over its rows, so per-element
//! summation order — and therefore every output bit — is unchanged (see
//! the determinism contract below).
//!
//! # Determinism contract
//!
//! For a given shape every output element is accumulated in one fixed
//! summation order: a single accumulator per element, sequential over the
//! depth index `p`. Everything else — tile shape, panel packing, the order
//! tiles are visited in, the depth chunking (partial sums round-trip
//! through `out` as exact f32 stores/loads), the ISA the body is compiled
//! for — only regroups *independent* elements and never reassociates a
//! single element's sum. Rust does not contract `mul`+`add` into fused
//! multiply-add, so the AVX2 path performs the identical IEEE operation
//! sequence per element and results are bit-for-bit reproducible across
//! runs, machines, and dispatch paths (`dispatch_matches_portable_body`
//! pins this on AVX2 hosts).
//!
//! The naive reference kernels live in [`reference`]; differential tests pin
//! the blocked kernels against them (relative error ≤ 1e-5 — blocked tiling
//! does not change the per-element order here, but the fused-bias epilogue
//! seeds the accumulator with the bias instead of adding it last, which is
//! why exact-equality is only guaranteed against the fused composition, not
//! against `reference` + `add_bias`).

/// Rows of the baseline register tile. 4 output rows share each gathered
/// B operand.
pub const MR: usize = 4;
/// Columns of the baseline register tile: 8 f32 = two SSE vectors.
pub const NR: usize = 8;

/// Rows of the AVX2 register tile.
const MR_WIDE: usize = 4;
/// Columns of the AVX2 register tile: 16 f32 = two YMM vectors per row,
/// giving 8 independent accumulator registers — enough in-flight add
/// chains to cover the vector-add latency.
const NR_WIDE: usize = 16;

/// Depth-chunk length: panels are packed at most `KC` depth steps at a
/// time so the pack buffers are fixed-size stack arrays (≤ 16 KiB each).
const KC: usize = 256;

/// Minimum `m·k·n` for a product to be worth fanning out across an
/// installed [`crate::pool::GemmPool`]: below this the panel hand-off
/// costs more than the arithmetic it distributes (a 64×64×32 product is
/// ~260 µs of work at 1 GFLOP/s; the pool round trip is a few µs).
pub(crate) const PAR_MKN_THRESHOLD: usize = 1 << 16;

/// Splits `out`'s `m` rows across the installed pool and runs `panel` on
/// each `(r0, r1)` chunk with a disjoint `&mut` slice of `out`. Returns
/// false (caller runs sequentially) when no pool is installed or the
/// product is too small to split.
fn try_parallel_rows(
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    panel: impl Fn(usize, usize, &mut [f32]) + Sync,
) -> bool {
    let Some(pool) = crate::pool::current() else {
        return false;
    };
    if pool.threads() < 2 || m < 2 * MR || m * k * n < PAR_MKN_THRESHOLD {
        return false;
    }
    let chunks = crate::pool::row_chunks(m, pool.threads(), MR);
    if chunks.len() < 2 {
        return false;
    }
    let outp = crate::pool::SendPtr(out.as_mut_ptr());
    let chunks = &chunks;
    let panel = &panel;
    pool.run(chunks.len(), &move |ci| {
        // Bind the wrapper whole so precise capture takes the `Sync`
        // `SendPtr`, not its raw-pointer field.
        let outp = outp;
        let (r0, r1) = chunks[ci];
        // SAFETY: chunks tile [0, m) disjointly, so each job owns rows
        // [r0, r1) of `out` exclusively; `out` itself is not touched by
        // the caller until `run` returns.
        let o = unsafe { std::slice::from_raw_parts_mut(outp.0.add(r0 * n), (r1 - r0) * n) };
        panel(r0, r1, o);
    });
    true
}
/// Upper bounds for the stack panel buffers (stable Rust cannot size an
/// array by `KC * R` for a const generic `R`).
const MR_MAX: usize = 8;
const NR_MAX: usize = 16;

/// The shared microkernel: one fused multiply-add of an `R`-vector of A
/// operands against a `C`-vector of B operands into the register tile.
/// Every GEMM variant funnels through this update, so the arithmetic (and
/// its vectorization) is identical regardless of operand layout.
#[inline(always)]
fn tile_fma<const R: usize, const C: usize>(
    acc: &mut [[f32; C]; R],
    a: &[f32; R],
    b: &[f32; C],
) {
    for r in 0..R {
        for c in 0..C {
            acc[r][c] += a[r] * b[c];
        }
    }
}

/// Epilogue applied when a tile (or scalar tail) leaves the registers.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Epilogue {
    /// `C = acc` (accumulator was seeded with zeros).
    Store,
    /// `C += acc` (gradient accumulation, e.g. `dW += Xᵀ·dY`).
    Accumulate,
    /// `C = acc` where the accumulator was seeded with the bias row.
    Bias,
    /// `C = max(acc, 0)` with a bias-seeded accumulator.
    BiasRelu,
}

/// Pack an `R × kc` operand panel into depth-major interleaved layout:
/// `panel[q * R + r] = row_r[q]`, where `row_r` starts at `base + r *
/// stride + p0`. Pure data movement — the arithmetic later reads the same
/// values in the same order, just from contiguous memory.
#[inline(always)]
fn pack_panel<const R: usize>(src: &[f32], base: usize, stride: usize, p0: usize, kc: usize, panel: &mut [f32]) {
    for r in 0..R {
        for (q, &v) in src[base + r * stride + p0..][..kc].iter().enumerate() {
            panel[q * R + r] = v;
        }
    }
}

/// `C (m×n) = A (m×k) · B (k×n)` with the chosen epilogue.
///
/// `bias` (length `n`) seeds the accumulator under `Bias`/`BiasRelu` and is
/// ignored otherwise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_nn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if try_parallel_rows(m, k, n, out, |r0, r1, o| {
        gemm_nn_seq(r1 - r0, k, n, &a[r0 * k..r1 * k], b, bias, epi, o)
    }) {
        return;
    }
    gemm_nn_seq(m, k, n, a, b, bias, epi, out);
}

#[allow(clippy::too_many_arguments)]
fn gemm_nn_seq(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: `wide::gemm_nn` is a safe function whose only requirement
        // is AVX2 support, checked on the line above.
        unsafe { wide::gemm_nn(m, k, n, a, b, bias, epi, out) };
        return;
    }
    gemm_nn_body::<MR, NR>(m, k, n, a, b, bias, epi, out);
}

/// `C (m×n) = Aᵀ · B` where `A` is `k×m` and `B` is `k×n`. Both operand
/// gathers are contiguous row slices, so this variant needs no packing —
/// it carries the weight-gradient GEMM (`dW += Xᵀ·dY`, usually with
/// [`Epilogue::Accumulate`]).
pub(crate) fn gemm_tn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    // Aᵀ's rows of `out` correspond to *columns* of the stored `k×m`
    // operand, so panels keep the full `a` and address it with a row
    // stride of `m` and a column offset `r0`.
    if try_parallel_rows(m, k, n, out, |r0, r1, o| {
        gemm_tn_seq(r1 - r0, k, n, a, m, r0, b, epi, o)
    }) {
        return;
    }
    gemm_tn_seq(m, k, n, a, m, 0, b, epi, out);
}

#[allow(clippy::too_many_arguments)]
fn gemm_tn_seq(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    astride: usize,
    aoff: usize,
    b: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: `wide::gemm_tn` is a safe function whose only requirement
        // is AVX2 support, checked on the line above.
        unsafe { wide::gemm_tn(m, k, n, a, astride, aoff, b, epi, out) };
        return;
    }
    gemm_tn_body::<MR, NR>(m, k, n, a, astride, aoff, b, epi, out);
}

/// `C (m×n) = A · Bᵀ` where `A` is `m×k` and `B` is `n×k` — the
/// input-gradient GEMM (`dX = dY·Wᵀ`). Both operands stride by `k`, so
/// both are repacked into contiguous panels before the microkernel runs.
pub(crate) fn gemm_nt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if try_parallel_rows(m, k, n, out, |r0, r1, o| {
        gemm_nt_seq(r1 - r0, k, n, &a[r0 * k..r1 * k], b, epi, o)
    }) {
        return;
    }
    gemm_nt_seq(m, k, n, a, b, epi, out);
}

fn gemm_nt_seq(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], epi: Epilogue, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: `wide::gemm_nt` is a safe function whose only requirement
        // is AVX2 support, checked on the line above.
        unsafe { wide::gemm_nt(m, k, n, a, b, epi, out) };
        return;
    }
    gemm_nt_body::<MR, NR>(m, k, n, a, b, epi, out);
}

/// AVX2 builds of the portable bodies (x86-64 only). `#[target_feature]`
/// recompiles the same safe code with 256-bit vectors and a wider tile; the
/// per-element operation sequence is unchanged (see the module docs), so
/// these produce bit-identical results to the portable path.
#[cfg(target_arch = "x86_64")]
mod wide {
    use super::*;

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_nn(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        epi: Epilogue,
        out: &mut [f32],
    ) {
        gemm_nn_body::<MR_WIDE, NR_WIDE>(m, k, n, a, b, bias, epi, out);
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_tn(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        astride: usize,
        aoff: usize,
        b: &[f32],
        epi: Epilogue,
        out: &mut [f32],
    ) {
        gemm_tn_body::<MR_WIDE, NR_WIDE>(m, k, n, a, astride, aoff, b, epi, out);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn gemm_nt(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        epi: Epilogue,
        out: &mut [f32],
    ) {
        gemm_nt_body::<MR_WIDE, NR_WIDE>(m, k, n, a, b, epi, out);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_nn_body<const R: usize, const C: usize>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    let mut apanel = [0.0f32; KC * MR_MAX];
    let mut i = 0;
    while i + R <= m {
        // Depth chunks: the A panel is packed once per chunk and reused
        // across every column tile; partial sums round-trip through `out`
        // (exact f32 stores/loads) between chunks.
        let mut p0 = 0;
        loop {
            let kc = KC.min(k - p0);
            pack_panel::<R>(a, i * k, k, p0, kc, &mut apanel);
            let seed_epi = if p0 == 0 { epi } else { Epilogue::Accumulate };
            let write_epi = if p0 + kc == k { epi } else { Epilogue::Store };
            let mut j = 0;
            while j + C <= n {
                let mut acc = seed_tile::<R, C>(bias, j, i, n, out, seed_epi);
                for (ap, brow) in apanel[..kc * R]
                    .chunks_exact(R)
                    .zip(b[p0 * n..(p0 + kc) * n].chunks_exact(n))
                {
                    let av: &[f32; R] = ap.try_into().unwrap();
                    let bv: &[f32; C] = brow[j..j + C].try_into().unwrap();
                    tile_fma(&mut acc, av, bv);
                }
                write_tile(&acc, i, j, n, out, write_epi);
                j += C;
            }
            p0 += kc;
            if p0 >= k {
                break;
            }
        }
        // Column tail: scalar, same p-order, full depth in one pass.
        for jj in (n - n % C)..n {
            for r in 0..R {
                let mut s = seed_scalar(bias, jj, (i + r) * n + jj, out, epi);
                for p in 0..k {
                    s += a[(i + r) * k + p] * b[p * n + jj];
                }
                out[(i + r) * n + jj] = finish_scalar(s, epi);
            }
        }
        i += R;
    }
    // Row tail: scalar, same p-order.
    for ii in i..m {
        for jj in 0..n {
            let mut s = seed_scalar(bias, jj, ii * n + jj, out, epi);
            for p in 0..k {
                s += a[ii * k + p] * b[p * n + jj];
            }
            out[ii * n + jj] = finish_scalar(s, epi);
        }
    }
}

/// `astride`/`aoff` view `a` as a `k × astride` matrix whose columns
/// `aoff..aoff+m` are the operand — the row-panel split hands each panel
/// the full buffer with a column offset (columns of the stored `Aᵀ` are
/// output rows, so they cannot be sliced contiguously). Whole-matrix
/// callers pass `astride = m, aoff = 0`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_tn_body<const R: usize, const C: usize>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    astride: usize,
    aoff: usize,
    b: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    let mut i = 0;
    while i + R <= m {
        let mut j = 0;
        while j + C <= n {
            let mut acc = seed_tile::<R, C>(&[], j, i, n, out, epi);
            for (arow, brow) in a.chunks_exact(astride).zip(b.chunks_exact(n)) {
                let av: &[f32; R] = arow[aoff + i..aoff + i + R].try_into().unwrap();
                let bv: &[f32; C] = brow[j..j + C].try_into().unwrap();
                tile_fma(&mut acc, av, bv);
            }
            write_tile(&acc, i, j, n, out, epi);
            j += C;
        }
        for jj in j..n {
            for r in 0..R {
                let mut s = seed_scalar(&[], jj, (i + r) * n + jj, out, epi);
                for p in 0..k {
                    s += a[p * astride + aoff + i + r] * b[p * n + jj];
                }
                out[(i + r) * n + jj] = finish_scalar(s, epi);
            }
        }
        i += R;
    }
    for ii in i..m {
        for jj in 0..n {
            let mut s = seed_scalar(&[], jj, ii * n + jj, out, epi);
            for p in 0..k {
                s += a[p * astride + aoff + ii] * b[p * n + jj];
            }
            out[ii * n + jj] = finish_scalar(s, epi);
        }
    }
}

#[inline(always)]
fn gemm_nt_body<const R: usize, const C: usize>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    epi: Epilogue,
    out: &mut [f32],
) {
    let mut apanel = [0.0f32; KC * MR_MAX];
    let mut bpanel = [0.0f32; KC * NR_MAX];
    // Column panels outermost so the B panel — the expensive strided
    // gather — is packed once per (panel, depth chunk) and reused across
    // every row tile.
    let mut j = 0;
    while j + C <= n {
        let mut p0 = 0;
        loop {
            let kc = KC.min(k - p0);
            pack_panel::<C>(b, j * k, k, p0, kc, &mut bpanel);
            let seed_epi = if p0 == 0 { epi } else { Epilogue::Accumulate };
            let write_epi = if p0 + kc == k { epi } else { Epilogue::Store };
            let mut i = 0;
            while i + R <= m {
                pack_panel::<R>(a, i * k, k, p0, kc, &mut apanel);
                let mut acc = seed_tile::<R, C>(&[], j, i, n, out, seed_epi);
                for (ap, bp) in apanel[..kc * R]
                    .chunks_exact(R)
                    .zip(bpanel[..kc * C].chunks_exact(C))
                {
                    let av: &[f32; R] = ap.try_into().unwrap();
                    let bv: &[f32; C] = bp.try_into().unwrap();
                    tile_fma(&mut acc, av, bv);
                }
                write_tile(&acc, i, j, n, out, write_epi);
                i += R;
            }
            p0 += kc;
            if p0 >= k {
                break;
            }
        }
        // Row tail for this column panel: scalar, same p-order, full depth.
        for ii in (m - m % R)..m {
            for jj in j..j + C {
                let mut s = seed_scalar(&[], jj, ii * n + jj, out, epi);
                for p in 0..k {
                    s += a[ii * k + p] * b[jj * k + p];
                }
                out[ii * n + jj] = finish_scalar(s, epi);
            }
        }
        j += C;
    }
    // Column tail: scalar, same p-order.
    for jj in j..n {
        for ii in 0..m {
            let mut s = seed_scalar(&[], jj, ii * n + jj, out, epi);
            for p in 0..k {
                s += a[ii * k + p] * b[jj * k + p];
            }
            out[ii * n + jj] = finish_scalar(s, epi);
        }
    }
}

#[inline(always)]
fn seed_tile<const R: usize, const C: usize>(
    bias: &[f32],
    j: usize,
    i: usize,
    n: usize,
    out: &[f32],
    epi: Epilogue,
) -> [[f32; C]; R] {
    let mut acc = [[0.0f32; C]; R];
    match epi {
        Epilogue::Store => {}
        Epilogue::Accumulate => {
            for (r, row) in acc.iter_mut().enumerate() {
                row.copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + C]);
            }
        }
        Epilogue::Bias | Epilogue::BiasRelu => {
            for row in &mut acc {
                row.copy_from_slice(&bias[j..j + C]);
            }
        }
    }
    acc
}

#[inline(always)]
fn write_tile<const R: usize, const C: usize>(
    acc: &[[f32; C]; R],
    i: usize,
    j: usize,
    n: usize,
    out: &mut [f32],
    epi: Epilogue,
) {
    for (r, row) in acc.iter().enumerate() {
        let dst = &mut out[(i + r) * n + j..(i + r) * n + j + C];
        if epi == Epilogue::BiasRelu {
            for (d, &v) in dst.iter_mut().zip(row) {
                *d = if v > 0.0 { v } else { 0.0 };
            }
        } else {
            dst.copy_from_slice(row);
        }
    }
}

#[inline(always)]
fn seed_scalar(bias: &[f32], j: usize, flat: usize, out: &[f32], epi: Epilogue) -> f32 {
    match epi {
        Epilogue::Store => 0.0,
        Epilogue::Accumulate => out[flat],
        Epilogue::Bias | Epilogue::BiasRelu => bias[j],
    }
}

#[inline(always)]
fn finish_scalar(s: f32, epi: Epilogue) -> f32 {
    if epi == Epilogue::BiasRelu && s <= 0.0 {
        0.0
    } else {
        s
    }
}

/// Naive reference kernels: the pre-engine scalar triple loops, kept
/// verbatim as the oracle the blocked kernels are differentially tested
/// (and benchmarked) against. Not used on any hot path.
pub mod reference {
    /// `C = A·B`, ikj loop order with zero-skip — the seed `Matrix::matmul`.
    pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// `C = Aᵀ·B` where `A` is `k×m` — the seed `Matrix::t_matmul`.
    pub fn t_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// `C = A·Bᵀ` where `B` is `n×k` — the seed `Matrix::matmul_t`.
    pub fn matmul_t(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 32) as u32 as f32 / u32::MAX as f32) - 0.5
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            let denom = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() / denom <= tol,
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_reference_all_variants() {
        // Shapes chosen to hit full tiles + both tails (m % MR, n % NR, and
        // n % NR_WIDE), the empty-depth edge, and the KC depth-chunk seam.
        for &(m, k, n) in &[
            (7usize, 13usize, 11usize),
            (8, 16, 8),
            (5, 3, 9),
            (1, 1, 1),
            (9, 32, 17),
            (6, 0, 9),
            (4, KC + 44, 16),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut blocked = vec![0.0f32; m * n];
            let mut naive = vec![0.0f32; m * n];
            gemm_nn(m, k, n, &a, &b, &[], Epilogue::Store, &mut blocked);
            reference::matmul(m, k, n, &a, &b, &mut naive);
            assert_close(&blocked, &naive, 1e-5);

            let at = fill(k * m, 3);
            gemm_tn(m, k, n, &at, &b, Epilogue::Store, &mut blocked);
            reference::t_matmul(m, k, n, &at, &b, &mut naive);
            assert_close(&blocked, &naive, 1e-5);

            let bt = fill(n * k, 4);
            gemm_nt(m, k, n, &a, &bt, Epilogue::Store, &mut blocked);
            reference::matmul_t(m, k, n, &a, &bt, &mut naive);
            assert_close(&blocked, &naive, 1e-5);
        }
    }

    #[test]
    fn accumulate_epilogue_adds() {
        let (m, k, n) = (6, 5, 10);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let mut once = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &[], Epilogue::Store, &mut once);
        let mut twice = once.clone();
        gemm_nn(m, k, n, &a, &b, &[], Epilogue::Accumulate, &mut twice);
        for (i, (&x, &y)) in twice.iter().zip(&once).enumerate() {
            assert!((x - 2.0 * y).abs() < 1e-4, "element {i}: {x} vs 2*{y}");
        }
    }

    #[test]
    fn bias_relu_epilogue_clamps() {
        let (m, k, n) = (5, 4, 9);
        let a = fill(m * k, 9);
        let b = fill(k * n, 10);
        let bias = fill(n, 11);
        let mut plain = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &bias, Epilogue::Bias, &mut plain);
        let mut fused = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &bias, Epilogue::BiasRelu, &mut fused);
        for (&f, &p) in fused.iter().zip(&plain) {
            // Bit-for-bit: the fused path is the plain path + clamp.
            assert_eq!(f.to_bits(), if p > 0.0 { p } else { 0.0 }.to_bits());
        }
        assert!(fused.iter().all(|&x| x >= 0.0));
        assert!(plain.iter().any(|&x| x < 0.0), "test needs negative outputs");
    }

    #[test]
    fn determinism_repeated_calls_identical() {
        let (m, k, n) = (13, 21, 19);
        let a = fill(m * k, 12);
        let b = fill(k * n, 13);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &[], Epilogue::Store, &mut c1);
        gemm_nn(m, k, n, &a, &b, &[], Epilogue::Store, &mut c2);
        assert_eq!(
            c1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            c2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The dispatched entry points (AVX2 wide tile on capable hosts) must
    /// be bit-identical to the portable baseline-tile body: the per-element
    /// summation order is the same and Rust never contracts mul+add, so
    /// any divergence is a kernel bug.
    #[test]
    fn dispatch_matches_portable_body() {
        for &(m, k, n) in &[(13usize, 37usize, 19usize), (16, KC + 5, 24), (4, 8, 16)] {
            let a = fill(m * k, 21);
            let b = fill(k * n, 22);
            let bias = fill(n, 23);
            let mut dispatched = vec![0.0f32; m * n];
            let mut portable = vec![0.0f32; m * n];

            gemm_nn(m, k, n, &a, &b, &bias, Epilogue::BiasRelu, &mut dispatched);
            gemm_nn_body::<MR, NR>(m, k, n, &a, &b, &bias, Epilogue::BiasRelu, &mut portable);
            assert_eq!(bits(&dispatched), bits(&portable), "nn {m}x{k}x{n}");

            let at = fill(k * m, 24);
            gemm_tn(m, k, n, &at, &b, Epilogue::Store, &mut dispatched);
            gemm_tn_body::<MR, NR>(m, k, n, &at, m, 0, &b, Epilogue::Store, &mut portable);
            assert_eq!(bits(&dispatched), bits(&portable), "tn {m}x{k}x{n}");

            let bt = fill(n * k, 25);
            gemm_nt(m, k, n, &a, &bt, Epilogue::Store, &mut dispatched);
            gemm_nt_body::<MR, NR>(m, k, n, &a, &bt, Epilogue::Store, &mut portable);
            assert_eq!(bits(&dispatched), bits(&portable), "nt {m}x{k}x{n}");
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Row-panel fan-out must be bit-identical to the sequential path for
    /// every variant, epilogue, and thread count — the foundation of the
    /// trainer's `gemm_threads` determinism guarantee. Shapes are sized
    /// past `PAR_MKN_THRESHOLD` so the split actually engages.
    #[test]
    fn pool_matches_sequential_bitwise() {
        use crate::pool::GemmPool;
        // 96·96·32 = 294912 ≥ threshold; 96 rows exercise uneven chunking
        // at 3 threads, and (41, 80, 23)-ish shapes hit every tail.
        for &(m, k, n) in &[(96usize, 96usize, 32usize), (77, 64, 48), (40, 120, 31)] {
            if m * k * n < PAR_MKN_THRESHOLD {
                continue;
            }
            let a = fill(m * k, 31);
            let b = fill(k * n, 32);
            let at = fill(k * m, 33);
            let bt = fill(n * k, 34);
            let bias = fill(n, 35);
            let seed_out = fill(m * n, 36);

            let run_all = |out: &mut Vec<Vec<f32>>| {
                let mut c = vec![0.0f32; m * n];
                gemm_nn(m, k, n, &a, &b, &bias, Epilogue::BiasRelu, &mut c);
                out.push(c.clone());
                c.copy_from_slice(&seed_out);
                gemm_tn(m, k, n, &at, &b, Epilogue::Accumulate, &mut c);
                out.push(c.clone());
                gemm_nt(m, k, n, &a, &bt, Epilogue::Store, &mut c);
                out.push(c);
            };

            let mut sequential = Vec::new();
            run_all(&mut sequential);
            for threads in [2usize, 3, 4] {
                let pool = GemmPool::new(threads);
                let mut pooled = Vec::new();
                pool.install(|| run_all(&mut pooled));
                for (s, p) in sequential.iter().zip(&pooled) {
                    assert_eq!(bits(s), bits(p), "{m}x{k}x{n} @ {threads} threads");
                }
            }
        }
    }
}
