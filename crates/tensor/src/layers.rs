//! Neural-network layers with explicit backward passes.
//!
//! Two calling conventions coexist:
//!
//! * the **in-place API** (`forward_into`/`backward_into`) is the hot path:
//!   the caller owns every activation and gradient buffer (see
//!   [`crate::DenseTape`]) and passes the layer's forward input back to
//!   `backward_into` explicitly, so a steady-state batch allocates nothing;
//! * the **legacy API** (`forward`/`backward`) allocates its outputs and
//!   caches a clone of the input inside the layer — kept for tests and
//!   one-shot evaluation, implemented on top of the in-place methods.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;
use crate::tape::DenseTape;

/// A differentiable layer.
pub trait Layer: Send {
    /// Forward pass for a batch (`rows` = batch size).
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Backward pass: takes `dL/d-output`, accumulates parameter gradients
    /// internally, returns `dL/d-input`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// In-place forward: writes the batch output into `out` (resized via
    /// [`Matrix::reset`], so a reused `out` does not reallocate). Does NOT
    /// cache the input — callers keeping activations on a tape pass it back
    /// to [`Layer::backward_into`].
    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix);

    /// In-place backward: `input` is the same matrix given to the matching
    /// [`Layer::forward_into`]; accumulates parameter gradients and writes
    /// `dL/d-input` into `grad_in`.
    fn backward_into(&mut self, input: &Matrix, grad_out: &Matrix, grad_in: &mut Matrix);

    /// Visits `(params, grads)` buffer pairs in a stable order. Used by
    /// optimizers and by dense-parameter AllReduce.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Total number of scalar parameters.
    fn num_params(&self) -> usize;

    /// Zeroes accumulated gradients.
    fn zero_grad(&mut self);

    /// GEMM flops (2 per multiply-add) of one *forward* pass over `rows`
    /// samples; backward costs ≈ 2× this. Feeds the `dense.gemm_flops`
    /// telemetry counter. Parameter-free layers report 0.
    fn flops(&self, rows: usize) -> u64 {
        let _ = rows;
        0
    }
}

/// Fully connected layer `Y = X·W + b`, Kaiming-uniform initialised, with
/// an optional fused ReLU epilogue (`Y = max(X·W + b, 0)`).
///
/// The fused form replaces a `Dense` + [`Relu`] pair: same math, same
/// parameter count and visit order (ReLU has no parameters), one kernel
/// pass instead of two full passes over the activation.
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    relu: bool,
    /// ReLU keep-mask of the most recent forward (`out > 0`), reused.
    mask: Vec<bool>,
    /// Reused scratch for the masked upstream gradient (ReLU backward).
    masked: Matrix,
    input: Option<Matrix>,
}

impl Dense {
    /// New layer mapping `in_dim → out_dim`, deterministic in `seed`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / in_dim as f32).sqrt();
        let data: Vec<f32> = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            w: Matrix::from_vec(in_dim, out_dim, data),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            relu: false,
            mask: Vec::new(),
            masked: Matrix::zeros(0, 0),
            input: None,
        }
    }

    /// New layer with the fused ReLU epilogue.
    pub fn new_relu(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut d = Self::new(in_dim, out_dim, seed);
        d.relu = true;
        d
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Whether the fused ReLU epilogue is enabled.
    pub fn has_relu(&self) -> bool {
        self.relu
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out);
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.input.take().expect("backward called before forward");
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(&input, grad_out, &mut grad_in);
        self.input = Some(input);
        grad_in
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        if self.relu {
            input.matmul_bias_relu_into(&self.w, &self.b, out);
            // Keep-mask from the clamped output: out > 0 ⟺ pre-act > 0.
            self.mask.clear();
            self.mask.extend(out.data().iter().map(|&x| x > 0.0));
        } else {
            input.matmul_bias_into(&self.w, &self.b, out);
        }
    }

    fn backward_into(&mut self, input: &Matrix, grad_out: &Matrix, grad_in: &mut Matrix) {
        // dW += Xᵀ·dY ; db += colsum(dY) ; dX = dY·Wᵀ — with dY masked
        // first when the ReLU epilogue is fused in.
        let dy: &Matrix = if self.relu {
            assert_eq!(
                grad_out.data().len(),
                self.mask.len(),
                "backward shape mismatch"
            );
            self.masked.reset(grad_out.rows(), grad_out.cols());
            for ((m, &g), &keep) in self
                .masked
                .data_mut()
                .iter_mut()
                .zip(grad_out.data())
                .zip(&self.mask)
            {
                *m = if keep { g } else { 0.0 };
            }
            &self.masked
        } else {
            grad_out
        };
        input.t_matmul_acc(dy, &mut self.grad_w);
        dy.col_sums_into(&mut self.grad_b);
        dy.matmul_t_into(&self.w, grad_in);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.data_mut(), self.grad_w.data_mut());
        f(&mut self.b, &mut self.grad_b);
    }

    fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    fn zero_grad(&mut self) {
        self.grad_w.clear();
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn flops(&self, rows: usize) -> u64 {
        2 * rows as u64 * self.w.rows() as u64 * self.w.cols() as u64
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        // ReLU backward needs only the mask, not the forward input.
        let empty = Matrix::zeros(0, 0);
        self.backward_into(&empty, grad_out, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        out.reset(input.rows(), input.cols());
        self.mask.clear();
        self.mask.reserve(input.data().len());
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            let keep = x > 0.0;
            self.mask.push(keep);
            *o = if keep { x } else { 0.0 };
        }
    }

    fn backward_into(&mut self, _input: &Matrix, grad_out: &Matrix, grad_in: &mut Matrix) {
        assert_eq!(
            grad_out.data().len(),
            self.mask.len(),
            "backward shape mismatch"
        );
        grad_in.reset(grad_out.rows(), grad_out.cols());
        for ((gi, &g), &keep) in grad_in
            .data_mut()
            .iter_mut()
            .zip(grad_out.data())
            .zip(&self.mask)
        {
            *gi = if keep { g } else { 0.0 };
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn num_params(&self) -> usize {
        0
    }

    fn zero_grad(&mut self) {}
}

/// DCN cross layer: `x_{l+1} = x_0 ⊙ (x_l·w) + b + x_l` (Wang et al. 2017).
///
/// `x_0` is the layer-0 input of the cross network; the layer receives it at
/// construction time of each forward pass via [`CrossLayer::set_x0`].
pub struct CrossLayer {
    w: Vec<f32>,
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    x0: Option<Matrix>,
    input: Option<Matrix>,
}

impl CrossLayer {
    /// New cross layer of width `dim`.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (1.0 / dim as f32).sqrt();
        Self {
            w: (0..dim).map(|_| rng.gen_range(-bound..bound)).collect(),
            b: vec![0.0; dim],
            grad_w: vec![0.0; dim],
            grad_b: vec![0.0; dim],
            x0: None,
            input: None,
        }
    }

    /// Provides the cross-network input `x_0` for the current batch. Must be
    /// called before `forward`. (The in-place methods take `x0` by reference
    /// instead — no per-batch clone.)
    pub fn set_x0(&mut self, x0: Matrix) {
        self.x0 = Some(x0);
    }

    /// In-place forward with `x0` passed by reference:
    /// `out = x0 ⊙ (input·w) + b + input`.
    pub fn forward_with_x0(&mut self, x0: &Matrix, input: &Matrix, out: &mut Matrix) {
        assert_eq!(x0.rows(), input.rows(), "x0/batch mismatch");
        assert_eq!(x0.cols(), input.cols(), "cross width mismatch");
        let rows = input.rows();
        let dim = input.cols();
        out.reset(rows, dim);
        for r in 0..rows {
            let xl = input.row(r);
            let dot: f32 = xl.iter().zip(&self.w).map(|(&x, &w)| x * w).sum();
            let x0r = x0.row(r);
            let o = out.row_mut(r);
            for j in 0..dim {
                o[j] = x0r[j] * dot + self.b[j] + xl[j];
            }
        }
    }

    /// In-place backward with `x0` and the forward `input` by reference.
    /// Accumulates `grad_w`/`grad_b`, writes `dL/d-input` into `grad_in`.
    ///
    /// (x0 is an input from the embedding side; its gradient flows through
    /// `grad_in` of the *first* cross layer, where `x_l = x_0`.)
    pub fn backward_with_x0(
        &mut self,
        x0: &Matrix,
        input: &Matrix,
        grad_out: &Matrix,
        grad_in: &mut Matrix,
    ) {
        let rows = grad_out.rows();
        let dim = grad_out.cols();
        grad_in.reset(rows, dim);
        // dL/db_j = Σ_r g_j — a column sum, hoisted out of the row loop.
        grad_out.col_sums_into(&mut self.grad_b);
        for r in 0..rows {
            let g = grad_out.row(r);
            let x0r = x0.row(r);
            let xl = input.row(r);
            // s = Σ_j g_j·x0_j  (scalar per row)
            let s: f32 = g.iter().zip(x0r).map(|(&gj, &x0j)| gj * x0j).sum();
            let gi = grad_in.row_mut(r);
            for j in 0..dim {
                // dL/dxl_j = g_j (identity) + s·w_j (through the dot product)
                gi[j] = g[j] + s * self.w[j];
                // dL/dw_j = s·xl_j
                self.grad_w[j] += s * xl[j];
            }
        }
    }
}

impl Layer for CrossLayer {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(input, &mut out);
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.input.take().expect("forward before backward");
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(&input, grad_out, &mut grad_in);
        self.input = Some(input);
        grad_in
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        let x0 = self.x0.take().expect("set_x0 before forward");
        self.forward_with_x0(&x0, input, out);
        self.x0 = Some(x0);
    }

    fn backward_into(&mut self, input: &Matrix, grad_out: &Matrix, grad_in: &mut Matrix) {
        let x0 = self.x0.take().expect("x0 cached");
        self.backward_with_x0(&x0, input, grad_out, grad_in);
        self.x0 = Some(x0);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn zero_grad(&mut self) {
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn flops(&self, rows: usize) -> u64 {
        // dot (2·dim) + scale-add output (2·dim) per row.
        4 * rows as u64 * self.w.len() as u64
    }
}

/// A sequential stack of layers ending in a single logit column.
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
}

impl Mlp {
    /// Builds `in_dim → hidden[0] → … → hidden[n-1] → 1` with ReLU after
    /// each hidden layer (fused into the [`Dense`] kernel).
    pub fn new(in_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut dim = in_dim;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(Box::new(Dense::new_relu(dim, h, seed.wrapping_add(i as u64))));
            dim = h;
        }
        layers.push(Box::new(Dense::new(
            dim,
            1,
            seed.wrapping_add(hidden.len() as u64),
        )));
        Self { layers }
    }

    /// Builds from explicit layers (used by DCN's combined tower).
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Forward through the stack.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Backward through the stack; returns `dL/d-input`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Allocation-free forward: every layer's activation lands in
    /// `tape.acts[i]` (the logits end up at [`DenseTape::output`]). Nothing
    /// is cached inside the layers — pair with [`Mlp::backward_tape`].
    pub fn forward_tape(&mut self, input: &Matrix, tape: &mut DenseTape) {
        let n = self.layers.len();
        tape.ensure_acts(n);
        for i in 0..n {
            let (before, rest) = tape.acts.split_at_mut(i);
            let src: &Matrix = if i == 0 { input } else { &before[i - 1] };
            self.layers[i].forward_into(src, &mut rest[0]);
            let rows = src.rows();
            tape.add_flops(self.layers[i].flops(rows));
        }
    }

    /// Allocation-free backward matching the preceding
    /// [`Mlp::forward_tape`] on the same `input` and `tape`: ping-pongs the
    /// upstream gradient through the tape's two gradient buffers (swapped
    /// by pointer) and writes `dL/d-input` into `grad_in`.
    pub fn backward_tape(
        &mut self,
        input: &Matrix,
        grad_out: &Matrix,
        grad_in: &mut Matrix,
        tape: &mut DenseTape,
    ) {
        let n = self.layers.len();
        assert!(tape.acts.len() >= n, "forward_tape before backward_tape");
        // Presize BOTH ping-pong buffers to the largest intermediate
        // gradient. With an odd number of swaps per batch the buffers trade
        // roles across batches; without this, one of them would first grow
        // on batch 2 and trip the post-warmup-growth counter.
        let max_elems = (1..n)
            .map(|i| tape.acts[i - 1].rows() * tape.acts[i - 1].cols())
            .max()
            .unwrap_or(0);
        tape.g_a.ensure_capacity(max_elems);
        tape.g_b.ensure_capacity(max_elems);
        for i in (0..n).rev() {
            let rows = if i == 0 { input.rows() } else { tape.acts[i - 1].rows() };
            tape.add_flops(2 * self.layers[i].flops(rows));
            if i == 0 {
                let src: &Matrix = if n == 1 { grad_out } else { &tape.g_a };
                self.layers[0].backward_into(input, src, grad_in);
            } else if i == n - 1 {
                self.layers[i].backward_into(&tape.acts[i - 1], grad_out, &mut tape.g_b);
                std::mem::swap(&mut tape.g_a, &mut tape.g_b);
            } else {
                // Invariant: the upstream gradient lives in g_a; write the
                // new one into g_b, then swap (pointer swap, no copy).
                self.layers[i].backward_into(&tape.acts[i - 1], &tape.g_a, &mut tape.g_b);
                std::mem::swap(&mut tape.g_a, &mut tape.g_b);
            }
        }
    }

    /// Visits all `(param, grad)` buffers in stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total scalar parameter count (the dense payload AllReduce moves).
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Copies all parameters into one flat vector (AllReduce staging).
    pub fn flatten_params(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Copies all gradients into one flat vector.
    pub fn flatten_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |_, g| out.extend_from_slice(g));
        out
    }

    /// Overwrites parameters from a flat vector produced by
    /// [`Mlp::flatten_params`].
    ///
    /// # Panics
    /// Panics if `flat.len() != num_params()`.
    pub fn load_params(&mut self, flat: &[f32]) {
        let mut cursor = 0usize;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&flat[cursor..cursor + p.len()]);
            cursor += p.len();
        });
        assert_eq!(cursor, flat.len(), "flat parameter length mismatch");
    }

    /// Overwrites gradient buffers from a flat vector (post-AllReduce).
    pub fn load_grads(&mut self, flat: &[f32]) {
        let mut cursor = 0usize;
        self.visit_params(&mut |_, g| {
            g.copy_from_slice(&flat[cursor..cursor + g.len()]);
            cursor += g.len();
        });
        assert_eq!(cursor, flat.len(), "flat gradient length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        mut fwd: impl FnMut(&Matrix) -> f32,
        input: &Matrix,
        analytic: &Matrix,
        eps: f32,
        tol: f32,
    ) {
        for i in 0..input.data().len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let num = (fwd(&plus) - fwd(&minus)) / (2.0 * eps);
            let ana = analytic.data()[i];
            assert!(
                (num - ana).abs() < tol.max(0.05 * num.abs()),
                "grad[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn dense_forward_known() {
        let mut d = Dense::new(2, 2, 1);
        d.w = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        d.b = vec![0.5, -0.5];
        let x = Matrix::from_vec(1, 2, vec![1., 1.]);
        let y = d.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_backward_gradcheck() {
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        // Loss = sum of outputs; dL/dY = ones.
        let mut layer = Dense::new(3, 2, 7);
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = layer.forward(&x);
        let grad_in = layer.backward(&ones);
        let w = layer.w.clone();
        let b = layer.b.clone();
        finite_diff_check(
            move |inp| {
                let mut probe = Dense::new(3, 2, 0);
                probe.w = w.clone();
                probe.b = b.clone();
                probe.forward(inp).data().iter().sum()
            },
            &x,
            &grad_in,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn dense_weight_grad_accumulates() {
        let mut layer = Dense::new(2, 1, 3);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let g = Matrix::from_vec(1, 1, vec![1.0]);
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        // dW = x·g accumulated twice.
        assert_eq!(layer.grad_w.data(), &[2.0, 4.0]);
        layer.zero_grad();
        assert_eq!(layer.grad_w.data(), &[0.0, 0.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 2.0, 0.0, 3.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 3.0]);
        let g = Matrix::from_vec(1, 4, vec![1.0; 4]);
        let gi = r.backward(&g);
        assert_eq!(gi.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn cross_layer_identity_component() {
        let mut c = CrossLayer::new(3, 5);
        c.w = vec![0.0; 3];
        c.b = vec![0.0; 3];
        let x0 = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        c.set_x0(x0.clone());
        let y = c.forward(&x0);
        // With w = 0: y = x0 (identity passthrough).
        assert_eq!(y.data(), x0.data());
    }

    #[test]
    fn cross_layer_gradcheck() {
        let x0 = Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.9, 0.1, -0.4]);
        let xl = Matrix::from_vec(2, 3, vec![1.0, 0.5, -0.2, -1.1, 0.8, 0.6]);
        let mut c = CrossLayer::new(3, 11);
        let w = c.w.clone();
        let b = c.b.clone();
        c.set_x0(x0.clone());
        let _ = c.forward(&xl);
        let ones = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let grad_in = c.backward(&ones);
        finite_diff_check(
            move |inp| {
                let mut probe = CrossLayer::new(3, 0);
                probe.w = w.clone();
                probe.b = b.clone();
                probe.set_x0(x0.clone());
                probe.forward(inp).data().iter().sum()
            },
            &xl,
            &grad_in,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn mlp_shapes_and_params() {
        let mut mlp = Mlp::new(8, &[16, 4], 1);
        let x = Matrix::zeros(3, 8);
        let y = mlp.forward(&x);
        assert_eq!(y.rows(), 3);
        assert_eq!(y.cols(), 1);
        assert_eq!(mlp.num_params(), 8 * 16 + 16 + 16 * 4 + 4 + 4 + 1);
    }

    #[test]
    fn mlp_flatten_roundtrip() {
        let mut mlp = Mlp::new(4, &[8], 42);
        let flat = mlp.flatten_params();
        assert_eq!(flat.len(), mlp.num_params());
        let mut mlp2 = Mlp::new(4, &[8], 43);
        mlp2.load_params(&flat);
        assert_eq!(mlp2.flatten_params(), flat);
    }

    #[test]
    fn mlp_gradient_descends_loss() {
        // One step of plain SGD on a tiny regression problem must reduce loss.
        let mut mlp = Mlp::new(2, &[8], 9);
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let target = [0.0f32, 1.0, 1.0, 0.0];
        let loss = |m: &mut Mlp| -> f32 {
            let y = m.forward(&x);
            y.data()
                .iter()
                .zip(&target)
                .map(|(&p, &t)| (p - t) * (p - t))
                .sum::<f32>()
        };
        let before = loss(&mut mlp);
        // dL/dy = 2(y−t)
        let y = mlp.forward(&x);
        let g = Matrix::from_vec(
            4,
            1,
            y.data()
                .iter()
                .zip(&target)
                .map(|(&p, &t)| 2.0 * (p - t))
                .collect(),
        );
        mlp.zero_grad();
        let _ = mlp.backward(&g);
        mlp.visit_params(&mut |p, gr| {
            for (pi, gi) in p.iter_mut().zip(gr.iter()) {
                *pi -= 0.01 * gi;
            }
        });
        let after = loss(&mut mlp);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "flat parameter length mismatch")]
    fn load_params_length_checked() {
        // Mlp(2,[2]) has 9 parameters; an over-long flat vector must be
        // rejected after the buffers are consumed.
        let mut mlp = Mlp::new(2, &[2], 0);
        mlp.load_params(&[0.0; 10]);
    }
}
