//! Neural-network layers with explicit backward passes.
//!
//! Layers cache whatever forward-pass state their backward pass needs, so the
//! calling convention is strictly `forward` then `backward` per mini-batch
//! (the trainer in `hetgmp-core` drives them that way).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// A differentiable layer.
pub trait Layer: Send {
    /// Forward pass for a batch (`rows` = batch size).
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Backward pass: takes `dL/d-output`, accumulates parameter gradients
    /// internally, returns `dL/d-input`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visits `(params, grads)` buffer pairs in a stable order. Used by
    /// optimizers and by dense-parameter AllReduce.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Total number of scalar parameters.
    fn num_params(&self) -> usize;

    /// Zeroes accumulated gradients.
    fn zero_grad(&mut self);
}

/// Fully connected layer `Y = X·W + b`, Kaiming-uniform initialised.
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    input: Option<Matrix>,
}

impl Dense {
    /// New layer mapping `in_dim → out_dim`, deterministic in `seed`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / in_dim as f32).sqrt();
        let data: Vec<f32> = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            w: Matrix::from_vec(in_dim, out_dim, data),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            input: None,
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.w);
        out.add_bias(&self.b);
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .input
            .as_ref()
            .expect("backward called before forward");
        // dW += Xᵀ·dY ; db += colsum(dY) ; dX = dY·Wᵀ
        let dw = input.t_matmul(grad_out);
        for (g, d) in self.grad_w.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        for (g, d) in self.grad_b.iter_mut().zip(grad_out.col_sums()) {
            *g += d;
        }
        grad_out.matmul_t(&self.w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.data_mut(), self.grad_w.data_mut());
        f(&mut self.b, &mut self.grad_b);
    }

    fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    fn zero_grad(&mut self) {
        self.grad_w.clear();
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        self.mask.clear();
        self.mask.reserve(out.data().len());
        for x in out.data_mut() {
            let keep = *x > 0.0;
            self.mask.push(keep);
            if !keep {
                *x = 0.0;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(
            grad_out.data().len(),
            self.mask.len(),
            "backward shape mismatch"
        );
        let mut out = grad_out.clone();
        for (g, &keep) in out.data_mut().iter_mut().zip(&self.mask) {
            if !keep {
                *g = 0.0;
            }
        }
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn num_params(&self) -> usize {
        0
    }

    fn zero_grad(&mut self) {}
}

/// DCN cross layer: `x_{l+1} = x_0 ⊙ (x_l·w) + b + x_l` (Wang et al. 2017).
///
/// `x_0` is the layer-0 input of the cross network; the layer receives it at
/// construction time of each forward pass via [`CrossLayer::set_x0`].
pub struct CrossLayer {
    w: Vec<f32>,
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    x0: Option<Matrix>,
    input: Option<Matrix>,
    xw: Vec<f32>, // cached x_l·w per batch row
}

impl CrossLayer {
    /// New cross layer of width `dim`.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (1.0 / dim as f32).sqrt();
        Self {
            w: (0..dim).map(|_| rng.gen_range(-bound..bound)).collect(),
            b: vec![0.0; dim],
            grad_w: vec![0.0; dim],
            grad_b: vec![0.0; dim],
            x0: None,
            input: None,
            xw: Vec::new(),
        }
    }

    /// Provides the cross-network input `x_0` for the current batch. Must be
    /// called before `forward`.
    pub fn set_x0(&mut self, x0: Matrix) {
        self.x0 = Some(x0);
    }
}

impl Layer for CrossLayer {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let x0 = self.x0.as_ref().expect("set_x0 before forward");
        assert_eq!(x0.rows(), input.rows(), "x0/batch mismatch");
        assert_eq!(x0.cols(), input.cols(), "cross width mismatch");
        let rows = input.rows();
        let dim = input.cols();
        self.xw.clear();
        let mut out = Matrix::zeros(rows, dim);
        for r in 0..rows {
            let xl = input.row(r);
            let dot: f32 = xl.iter().zip(&self.w).map(|(&x, &w)| x * w).sum();
            self.xw.push(dot);
            let x0r = x0.row(r);
            let o = out.row_mut(r);
            for j in 0..dim {
                o[j] = x0r[j] * dot + self.b[j] + xl[j];
            }
        }
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x0 = self.x0.as_ref().expect("x0 cached");
        let input = self.input.as_ref().expect("forward before backward");
        let rows = grad_out.rows();
        let dim = grad_out.cols();
        let mut grad_in = Matrix::zeros(rows, dim);
        for r in 0..rows {
            let g = grad_out.row(r);
            let x0r = x0.row(r);
            let xl = input.row(r);
            // s = Σ_j g_j·x0_j  (scalar per row)
            let s: f32 = g.iter().zip(x0r).map(|(&gj, &x0j)| gj * x0j).sum();
            let dot = self.xw[r];
            let gi = grad_in.row_mut(r);
            for j in 0..dim {
                // dL/dxl_j = g_j (identity) + s·w_j (through the dot product)
                gi[j] = g[j] + s * self.w[j];
                // dL/dw_j = s·xl_j ; dL/db_j = g_j
                self.grad_w[j] += s * xl[j];
                self.grad_b[j] += g[j];
                // (x0 is an input from the embedding side; its gradient flows
                // through grad_in of the *first* cross layer where x_l = x_0.)
                let _ = dot;
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn zero_grad(&mut self) {
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// A sequential stack of layers ending in a single logit column.
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
}

impl Mlp {
    /// Builds `in_dim → hidden[0] → … → hidden[n-1] → 1` with ReLU between
    /// dense layers.
    pub fn new(in_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut dim = in_dim;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(Box::new(Dense::new(dim, h, seed.wrapping_add(i as u64))));
            layers.push(Box::new(Relu::new()));
            dim = h;
        }
        layers.push(Box::new(Dense::new(
            dim,
            1,
            seed.wrapping_add(hidden.len() as u64),
        )));
        Self { layers }
    }

    /// Builds from explicit layers (used by DCN's combined tower).
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Forward through the stack.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Backward through the stack; returns `dL/d-input`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits all `(param, grad)` buffers in stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total scalar parameter count (the dense payload AllReduce moves).
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Copies all parameters into one flat vector (AllReduce staging).
    pub fn flatten_params(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Copies all gradients into one flat vector.
    pub fn flatten_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |_, g| out.extend_from_slice(g));
        out
    }

    /// Overwrites parameters from a flat vector produced by
    /// [`Mlp::flatten_params`].
    ///
    /// # Panics
    /// Panics if `flat.len() != num_params()`.
    pub fn load_params(&mut self, flat: &[f32]) {
        let mut cursor = 0usize;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&flat[cursor..cursor + p.len()]);
            cursor += p.len();
        });
        assert_eq!(cursor, flat.len(), "flat parameter length mismatch");
    }

    /// Overwrites gradient buffers from a flat vector (post-AllReduce).
    pub fn load_grads(&mut self, flat: &[f32]) {
        let mut cursor = 0usize;
        self.visit_params(&mut |_, g| {
            g.copy_from_slice(&flat[cursor..cursor + g.len()]);
            cursor += g.len();
        });
        assert_eq!(cursor, flat.len(), "flat gradient length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        mut fwd: impl FnMut(&Matrix) -> f32,
        input: &Matrix,
        analytic: &Matrix,
        eps: f32,
        tol: f32,
    ) {
        for i in 0..input.data().len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let num = (fwd(&plus) - fwd(&minus)) / (2.0 * eps);
            let ana = analytic.data()[i];
            assert!(
                (num - ana).abs() < tol.max(0.05 * num.abs()),
                "grad[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn dense_forward_known() {
        let mut d = Dense::new(2, 2, 1);
        d.w = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        d.b = vec![0.5, -0.5];
        let x = Matrix::from_vec(1, 2, vec![1., 1.]);
        let y = d.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_backward_gradcheck() {
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        // Loss = sum of outputs; dL/dY = ones.
        let mut layer = Dense::new(3, 2, 7);
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = layer.forward(&x);
        let grad_in = layer.backward(&ones);
        let w = layer.w.clone();
        let b = layer.b.clone();
        finite_diff_check(
            move |inp| {
                let mut probe = Dense::new(3, 2, 0);
                probe.w = w.clone();
                probe.b = b.clone();
                probe.forward(inp).data().iter().sum()
            },
            &x,
            &grad_in,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn dense_weight_grad_accumulates() {
        let mut layer = Dense::new(2, 1, 3);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let g = Matrix::from_vec(1, 1, vec![1.0]);
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        // dW = x·g accumulated twice.
        assert_eq!(layer.grad_w.data(), &[2.0, 4.0]);
        layer.zero_grad();
        assert_eq!(layer.grad_w.data(), &[0.0, 0.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 2.0, 0.0, 3.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 3.0]);
        let g = Matrix::from_vec(1, 4, vec![1.0; 4]);
        let gi = r.backward(&g);
        assert_eq!(gi.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn cross_layer_identity_component() {
        let mut c = CrossLayer::new(3, 5);
        c.w = vec![0.0; 3];
        c.b = vec![0.0; 3];
        let x0 = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        c.set_x0(x0.clone());
        let y = c.forward(&x0);
        // With w = 0: y = x0 (identity passthrough).
        assert_eq!(y.data(), x0.data());
    }

    #[test]
    fn cross_layer_gradcheck() {
        let x0 = Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.9, 0.1, -0.4]);
        let xl = Matrix::from_vec(2, 3, vec![1.0, 0.5, -0.2, -1.1, 0.8, 0.6]);
        let mut c = CrossLayer::new(3, 11);
        let w = c.w.clone();
        let b = c.b.clone();
        c.set_x0(x0.clone());
        let _ = c.forward(&xl);
        let ones = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let grad_in = c.backward(&ones);
        finite_diff_check(
            move |inp| {
                let mut probe = CrossLayer::new(3, 0);
                probe.w = w.clone();
                probe.b = b.clone();
                probe.set_x0(x0.clone());
                probe.forward(inp).data().iter().sum()
            },
            &xl,
            &grad_in,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn mlp_shapes_and_params() {
        let mut mlp = Mlp::new(8, &[16, 4], 1);
        let x = Matrix::zeros(3, 8);
        let y = mlp.forward(&x);
        assert_eq!(y.rows(), 3);
        assert_eq!(y.cols(), 1);
        assert_eq!(mlp.num_params(), 8 * 16 + 16 + 16 * 4 + 4 + 4 + 1);
    }

    #[test]
    fn mlp_flatten_roundtrip() {
        let mut mlp = Mlp::new(4, &[8], 42);
        let flat = mlp.flatten_params();
        assert_eq!(flat.len(), mlp.num_params());
        let mut mlp2 = Mlp::new(4, &[8], 43);
        mlp2.load_params(&flat);
        assert_eq!(mlp2.flatten_params(), flat);
    }

    #[test]
    fn mlp_gradient_descends_loss() {
        // One step of plain SGD on a tiny regression problem must reduce loss.
        let mut mlp = Mlp::new(2, &[8], 9);
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let target = [0.0f32, 1.0, 1.0, 0.0];
        let loss = |m: &mut Mlp| -> f32 {
            let y = m.forward(&x);
            y.data()
                .iter()
                .zip(&target)
                .map(|(&p, &t)| (p - t) * (p - t))
                .sum::<f32>()
        };
        let before = loss(&mut mlp);
        // dL/dy = 2(y−t)
        let y = mlp.forward(&x);
        let g = Matrix::from_vec(
            4,
            1,
            y.data()
                .iter()
                .zip(&target)
                .map(|(&p, &t)| 2.0 * (p - t))
                .collect(),
        );
        mlp.zero_grad();
        let _ = mlp.backward(&g);
        mlp.visit_params(&mut |p, gr| {
            for (pi, gi) in p.iter_mut().zip(gr.iter()) {
                *pi -= 0.01 * gi;
            }
        });
        let after = loss(&mut mlp);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "flat parameter length mismatch")]
    fn load_params_length_checked() {
        // Mlp(2,[2]) has 9 parameters; an over-long flat vector must be
        // rejected after the buffers are consumed.
        let mut mlp = Mlp::new(2, &[2], 0);
        mlp.load_params(&[0.0; 10]);
    }
}
