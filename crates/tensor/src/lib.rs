#![warn(missing_docs)]

//! # hetgmp-tensor
//!
//! Minimal CPU tensor/DNN substrate for the HET-GMP reproduction.
//!
//! The paper's models — Wide & Deep (WDL) and Deep & Cross (DCN) — run their
//! dense math with cuDNN on GPUs. Here the same math runs on CPU in f32:
//! exact forward/backward passes, so staleness in the *embedding* layer (the
//! system under study) propagates into genuinely degraded gradients and test
//! AUC, rather than being faked.
//!
//! Provided:
//! * [`Matrix`] — row-major f32 matrix with the handful of kernels a
//!   feed-forward CTR model needs, backed by the blocked [`gemm`] engine
//!   (naive loops survive as `*_ref` reference oracles);
//! * [`tape`] — [`DenseTape`], the reusable activation/gradient arena that
//!   lets a worker run forward/backward allocation-free in steady state;
//! * [`layers`] — `Dense`, `ReLU`, and DCN's `CrossLayer`, each with explicit
//!   backward passes; [`Mlp`] stacks them;
//! * [`loss`] — numerically-stable binary cross-entropy with logits;
//! * [`metrics`] — AUC (Mann–Whitney with tie handling) and log-loss;
//! * [`optim`] — SGD/Momentum, Adagrad, Adam for the dense parameters
//!   (sparse embedding optimizers live in `hetgmp-embedding`, where per-row
//!   state matters).

pub mod fm;
pub mod gemm;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod pool;
pub mod metrics;
pub mod optim;
pub mod tape;

pub use fm::{FmInteraction, TargetAttention};
pub use layers::{CrossLayer, Dense, Layer, Mlp, Relu};
pub use loss::{bce_with_logits, bce_with_logits_into};
pub use matrix::Matrix;
pub use metrics::{auc, log_loss};
pub use optim::{Adagrad, Adam, DenseOptimizer, Sgd};
pub use pool::GemmPool;
pub use tape::DenseTape;
