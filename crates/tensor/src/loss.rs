//! Binary cross-entropy with logits.

use crate::matrix::Matrix;

/// Numerically-stable BCE-with-logits.
///
/// Returns `(mean_loss, dL/dlogits)` where the gradient is already divided by
/// the batch size (so optimizers see the mean-loss gradient).
///
/// Stable form: `max(z,0) − z·y + ln(1 + e^{−|z|})`; gradient `σ(z) − y`.
///
/// # Panics
/// Panics if `logits` is not a single-column matrix matching `labels`.
pub fn bce_with_logits(logits: &Matrix, labels: &[f32]) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(logits.rows(), 1);
    let loss = bce_with_logits_into(logits, labels, &mut grad);
    (loss, grad)
}

/// In-place [`bce_with_logits`]: writes `dL/dlogits` into a caller-owned
/// `grad` matrix (resized via [`Matrix::reset`], reusing its allocation)
/// and returns the mean loss. The hot-loop form.
///
/// # Panics
/// Panics if `logits` is not a single-column matrix matching `labels`.
pub fn bce_with_logits_into(logits: &Matrix, labels: &[f32], grad: &mut Matrix) -> f32 {
    assert_eq!(logits.cols(), 1, "logits must be a column");
    assert_eq!(logits.rows(), labels.len(), "batch size mismatch");
    let n = labels.len().max(1) as f32;
    grad.reset(logits.rows(), 1);
    let mut loss = 0.0f32;
    for (i, (&z, &y)) in logits.data().iter().zip(labels).enumerate() {
        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        let sig = 1.0 / (1.0 + (-z).exp());
        grad.data_mut()[i] = (sig - y) / n;
    }
    loss / n
}

/// The logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_logit_loss_is_ln2() {
        let logits = Matrix::from_vec(2, 1, vec![0.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &[0.0, 1.0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        // grad = (σ(0) − y)/n = (0.5 − y)/2
        assert!((grad.get(0, 0) - 0.25).abs() < 1e-6);
        assert!((grad.get(1, 0) + 0.25).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_low_loss() {
        let logits = Matrix::from_vec(2, 1, vec![10.0, -10.0]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn confident_wrong_high_loss() {
        let logits = Matrix::from_vec(1, 1, vec![10.0]);
        let (loss, grad) = bce_with_logits(&logits, &[0.0]);
        assert!(loss > 9.0);
        assert!(grad.get(0, 0) > 0.99);
    }

    #[test]
    fn stable_for_large_magnitude() {
        let logits = Matrix::from_vec(2, 1, vec![500.0, -500.0]);
        let (loss, grad) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let z0 = 0.7f32;
        let y = 1.0f32;
        let eps = 1e-3;
        let at = |z: f32| {
            let (l, _) = bce_with_logits(&Matrix::from_vec(1, 1, vec![z]), &[y]);
            l
        };
        let num = (at(z0 + eps) - at(z0 - eps)) / (2.0 * eps);
        let (_, g) = bce_with_logits(&Matrix::from_vec(1, 1, vec![z0]), &[y]);
        assert!((num - g.get(0, 0)).abs() < 1e-3);
    }

    #[test]
    fn sigmoid_basic() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
