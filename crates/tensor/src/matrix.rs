//! Row-major f32 matrix with the kernels a feed-forward model needs.
//!
//! All three matrix products route through the blocked kernels in
//! [`crate::gemm`]; the pre-engine naive loops survive as `*_ref` reference
//! oracles for differential tests and the naive-vs-blocked benchmark.

use crate::gemm::{self, Epilogue};

/// A dense row-major matrix of `f32`. The `Default` is the empty `0×0`
/// matrix, the usual starting state for a reusable scratch buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Fills with zeros in place (reusing the allocation).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the allocation
    /// when it is already large enough. Lets a hot loop keep one scratch
    /// matrix instead of allocating per batch.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Bytes of backing storage currently reserved (capacity, not length).
    /// The `DenseTape` arena-bytes gauge sums this over its buffers to
    /// assert steady-state allocations stay flat after warmup.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Reserves backing storage for at least `elems` scalars without
    /// changing the matrix shape. Lets arena owners bring a buffer to its
    /// steady-state capacity up front (e.g. both ping-pong gradient buffers
    /// on the first batch) so later [`Matrix::reset`] calls never allocate.
    pub fn ensure_capacity(&mut self, elems: usize) {
        if self.data.capacity() < elems {
            self.data.reserve(elems - self.data.len());
        }
    }

    /// `self · other` — shapes `(m×k)·(k×n) → (m×n)`, blocked kernel.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self · other`, reusing `out`'s allocation.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.reset(m, n);
        gemm::gemm_nn(m, k, n, &self.data, &other.data, &[], Epilogue::Store, &mut out.data);
    }

    /// `out = self · other + bias` (bias broadcast over rows), fused —
    /// the accumulator tile is *seeded* with the bias, one pass over `out`.
    pub fn matmul_bias_into(&self, other: &Matrix, bias: &[f32], out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(bias.len(), other.cols, "bias length mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.reset(m, n);
        gemm::gemm_nn(m, k, n, &self.data, &other.data, bias, Epilogue::Bias, &mut out.data);
    }

    /// `out = max(self · other + bias, 0)` — fused dense-layer forward.
    /// Bit-for-bit equal to [`Self::matmul_bias_into`] followed by a ReLU
    /// clamp (the clamp is the epilogue of the same kernel).
    pub fn matmul_bias_relu_into(&self, other: &Matrix, bias: &[f32], out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(bias.len(), other.cols, "bias length mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.reset(m, n);
        gemm::gemm_nn(m, k, n, &self.data, &other.data, bias, Epilogue::BiasRelu, &mut out.data);
    }

    /// `selfᵀ · other` — shapes `(k×m)ᵀ·(k×n) → (m×n)`. Used for weight
    /// gradients (`Xᵀ · dY`).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// `out = selfᵀ · other`, reusing `out`'s allocation.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        out.reset(m, n);
        gemm::gemm_tn(m, k, n, &self.data, &other.data, Epilogue::Store, &mut out.data);
    }

    /// `out += selfᵀ · other` — accumulating weight-gradient GEMM
    /// (`dW += Xᵀ·dY`). `out` must already have shape `cols × other.cols`.
    pub fn t_matmul_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        assert_eq!((out.rows, out.cols), (m, n), "t_matmul_acc out shape mismatch");
        gemm::gemm_tn(m, k, n, &self.data, &other.data, Epilogue::Accumulate, &mut out.data);
    }

    /// `self · otherᵀ` — shapes `(m×k)·(n×k)ᵀ → (m×n)`. Used for input
    /// gradients (`dY · Wᵀ`).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `out = self · otherᵀ`, reusing `out`'s allocation.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        out.reset(m, n);
        gemm::gemm_nt(m, k, n, &self.data, &other.data, Epilogue::Store, &mut out.data);
    }

    /// Naive-loop `self · other` — the pre-engine kernel, kept as the
    /// reference oracle for differential tests and benches.
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        gemm::reference::matmul(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// Naive-loop `selfᵀ · other` reference oracle.
    pub fn t_matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        gemm::reference::t_matmul(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// Naive-loop `self · otherᵀ` reference oracle.
    pub fn matmul_t_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        gemm::reference::matmul_t(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// Adds `bias` (length `cols`) to every row.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used for bias gradients). Allocates; hot paths use
    /// [`Self::col_sums_into`].
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        self.col_sums_into(&mut out);
        out
    }

    /// **Accumulates** column sums into `out` (`out[j] += Σ_r self[r][j]`)
    /// — callers that want plain sums must zero `out` first. The
    /// accumulate form lets `Dense::backward` feed `grad_b` directly.
    ///
    /// # Panics
    /// Panics if `out.len() != cols`.
    pub fn col_sums_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "col_sums_into length mismatch");
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn from_vec_checks_shape() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_equals_transpose_matmul() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        // aᵀ·b where aᵀ is (2×3)
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+5, 3+5],[2+6, 4+6]]
        assert_eq!(c.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(2, 3, vec![1., 0., 1., 0., 1., 0.]);
        // a·bᵀ → (2×2): row0·row0 = 1+3 = 4; row0·row1 = 2
        let c = a.matmul_t(&b);
        assert_eq!(c.data(), &[4., 2., 10., 5.]);
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        m.add_bias(&[10., 20.]);
        assert_eq!(m.data(), &[11., 22., 13., 24.]);
        assert_eq!(m.col_sums(), vec![24., 46.]);
    }

    #[test]
    fn clear_reuses_allocation() {
        let mut m = Matrix::from_vec(1, 2, vec![1., 2.]);
        m.clear();
        assert_eq!(m.data(), &[0., 0.]);
    }

    #[test]
    fn norm() {
        let m = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 32) as u32 as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matches_naive_reference() {
        // The differential pin at the Matrix level: blocked kernels vs the
        // kept naive oracles, relative error ≤ 1e-5 over tail-heavy shapes.
        for &(m, k, n) in &[(7usize, 13usize, 11usize), (16, 8, 24), (1, 5, 1), (9, 1, 17)] {
            let a = rand_matrix(m, k, 1);
            let b = rand_matrix(k, n, 2);
            for (x, y) in a.matmul(&b).data().iter().zip(a.matmul_ref(&b).data()) {
                assert!((x - y).abs() / x.abs().max(1.0) <= 1e-5);
            }
            let at = rand_matrix(k, m, 3);
            for (x, y) in at.t_matmul(&b).data().iter().zip(at.t_matmul_ref(&b).data()) {
                assert!((x - y).abs() / x.abs().max(1.0) <= 1e-5);
            }
            let bt = rand_matrix(n, k, 4);
            for (x, y) in a.matmul_t(&bt).data().iter().zip(a.matmul_t_ref(&bt).data()) {
                assert!((x - y).abs() / x.abs().max(1.0) <= 1e-5);
            }
        }
    }

    #[test]
    fn fused_bias_relu_is_clamped_fused_bias() {
        let a = rand_matrix(6, 9, 5);
        let b = rand_matrix(9, 11, 6);
        let bias: Vec<f32> = rand_matrix(1, 11, 7).data().to_vec();
        let mut plain = Matrix::zeros(0, 0);
        let mut fused = Matrix::zeros(0, 0);
        a.matmul_bias_into(&b, &bias, &mut plain);
        a.matmul_bias_relu_into(&b, &bias, &mut fused);
        for (&f, &p) in fused.data().iter().zip(plain.data()) {
            assert_eq!(f.to_bits(), p.max(0.0).to_bits());
        }
        assert!(plain.data().iter().any(|&x| x < 0.0), "want negatives");
    }

    #[test]
    fn t_matmul_acc_accumulates() {
        let a = rand_matrix(8, 5, 8);
        let b = rand_matrix(8, 7, 9);
        let once = a.t_matmul(&b);
        let mut acc = once.clone();
        a.t_matmul_acc(&b, &mut acc);
        for (&x, &y) in acc.data().iter().zip(once.data()) {
            assert!((x - 2.0 * y).abs() < 1e-5);
        }
    }

    #[test]
    fn col_sums_into_accumulates() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let mut out = vec![10.0f32, 20.0];
        m.col_sums_into(&mut out);
        assert_eq!(out, vec![14., 26.]);
    }

    #[test]
    fn capacity_bytes_tracks_backing_store() {
        let mut m = Matrix::zeros(4, 4);
        let before = m.capacity_bytes();
        assert!(before >= 16 * 4);
        m.reset(2, 2); // shrink reuses the allocation
        assert_eq!(m.capacity_bytes(), before);
    }
}
