//! Row-major f32 matrix with the kernels a feed-forward model needs.

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Fills with zeros in place (reusing the allocation).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the allocation
    /// when it is already large enough. Lets a hot loop keep one scratch
    /// matrix instead of allocating per batch.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// `self · other` — shapes `(m×k)·(k×n) → (m×n)`, ikj loop order.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` — shapes `(k×m)ᵀ·(k×n) → (m×n)`. Used for weight
    /// gradients (`Xᵀ · dY`).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` — shapes `(m×k)·(n×k)ᵀ → (m×n)`. Used for input
    /// gradients (`dY · Wᵀ`).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, _k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds `bias` (length `cols`) to every row.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn from_vec_checks_shape() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_equals_transpose_matmul() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        // aᵀ·b where aᵀ is (2×3)
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+5, 3+5],[2+6, 4+6]]
        assert_eq!(c.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(2, 3, vec![1., 0., 1., 0., 1., 0.]);
        // a·bᵀ → (2×2): row0·row0 = 1+3 = 4; row0·row1 = 2
        let c = a.matmul_t(&b);
        assert_eq!(c.data(), &[4., 2., 10., 5.]);
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        m.add_bias(&[10., 20.]);
        assert_eq!(m.data(), &[11., 22., 13., 24.]);
        assert_eq!(m.col_sums(), vec![24., 46.]);
    }

    #[test]
    fn clear_reuses_allocation() {
        let mut m = Matrix::from_vec(1, 2, vec![1., 2.]);
        m.clear();
        assert_eq!(m.data(), &[0., 0.]);
    }

    #[test]
    fn norm() {
        let m = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
