//! Evaluation metrics: AUC and log-loss.
//!
//! The paper's convergence criterion is *test AUC* reaching a threshold
//! (~76% Avazu, ~80% Criteo), so AUC must be exact — including tie handling —
//! for the Figure 7 / Table 2 reproductions to be trustworthy.

/// Area under the ROC curve via the Mann–Whitney U statistic with average
/// ranks for ties. Returns 0.5 when either class is absent.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n = scores.len();
    if n == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..n).collect();
    // total_cmp keeps the sort well-defined even if a diverged model emits
    // NaN scores (NaN sorts above every number; the AUC is then simply a
    // poor score rather than a crash).
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    let mut rank_sum_pos = 0.0f64;
    let mut num_pos = 0u64;
    let mut i = 0usize;
    while i < n {
        // Tie group [i, j): identical scores share the average rank.
        let mut j = i + 1;
        while j < n && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // mean of ranks i+1..=j
        for &idx in &order[i..j] {
            if labels[idx] > 0.5 {
                rank_sum_pos += avg_rank;
                num_pos += 1;
            }
        }
        i = j;
    }
    let num_neg = n as u64 - num_pos;
    if num_pos == 0 || num_neg == 0 {
        return 0.5;
    }
    let u = rank_sum_pos - (num_pos * (num_pos + 1)) as f64 / 2.0;
    u / (num_pos as f64 * num_neg as f64)
}

/// Mean binary log-loss of probabilities (clipped away from 0/1).
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs/labels length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-7f64;
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = (p as f64).clamp(eps, 1.0 - eps);
            if y > 0.5 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let auc_v = auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]);
        assert!((auc_v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking() {
        let auc_v = auc(&[0.9, 0.8, 0.2, 0.1], &[0.0, 0.0, 1.0, 1.0]);
        assert!(auc_v.abs() < 1e-12);
    }

    #[test]
    fn balanced_ranking_is_half() {
        // Positives at the extremes, negatives in the middle: pairs
        // (0.1 vs 0.2, 0.3) discordant, (0.4 vs 0.2, 0.3) concordant → 0.5.
        let auc_v = auc(&[0.1, 0.2, 0.3, 0.4], &[1.0, 0.0, 0.0, 1.0]);
        assert!((auc_v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_ties_is_half() {
        let auc_v = auc(&[0.5; 6], &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        assert!((auc_v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn partial_overlap() {
        // pos scores {0.4, 0.8}, neg {0.2, 0.6}: concordant pairs:
        // (0.4>0.2)=1, (0.4>0.6)=0, (0.8>0.2)=1, (0.8>0.6)=1 → 3/4.
        let auc_v = auc(&[0.4, 0.8, 0.2, 0.6], &[1.0, 1.0, 0.0, 0.0]);
        assert!((auc_v - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tie_between_classes_counts_half() {
        // One pos and one neg share score 0.5 → that pair counts 0.5.
        let auc_v = auc(&[0.5, 0.5], &[1.0, 0.0]);
        assert!((auc_v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_loss_bounds() {
        assert!(log_loss(&[0.9, 0.1], &[1.0, 0.0]) < 0.2);
        assert!(log_loss(&[0.1, 0.9], &[1.0, 0.0]) > 2.0);
        assert_eq!(log_loss(&[], &[]), 0.0);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        let v = auc(&[0.1, f32::NAN, 0.9], &[0.0, 1.0, 1.0]);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn log_loss_clips_extremes() {
        let l = log_loss(&[0.0, 1.0], &[1.0, 0.0]);
        assert!(l.is_finite());
    }
}
