//! Dense-parameter optimizers.
//!
//! These step the DNN weights (the AllReduce-synchronised part of the hybrid
//! architecture). They hold per-buffer state internally, keyed by the stable
//! visitation order of [`crate::Mlp::visit_params`].

/// A stateful optimizer over a fixed sequence of parameter buffers.
pub trait DenseOptimizer: Send {
    /// Begins a step; called once before the per-buffer updates of a step.
    fn begin_step(&mut self) {}

    /// Updates the `slot`-th parameter buffer in the model's stable
    /// visitation order.
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]);
}

/// SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl DenseOptimizer for Sgd {
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        while self.velocity.len() <= slot {
            self.velocity.push(Vec::new());
        }
        let v = &mut self.velocity[slot];
        if v.len() != params.len() {
            v.resize(params.len(), 0.0);
        }
        for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = self.momentum * *vi + g;
            *p -= self.lr * *vi;
        }
    }
}

/// Adagrad — the optimizer most large-scale CTR systems default to for
/// sparse-heavy models.
#[derive(Debug, Clone)]
pub struct Adagrad {
    /// Learning rate.
    pub lr: f32,
    /// Denominator floor.
    pub eps: f32,
    accum: Vec<Vec<f32>>,
}

impl Adagrad {
    /// New Adagrad with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            eps: 1e-8,
            accum: Vec::new(),
        }
    }
}

impl DenseOptimizer for Adagrad {
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        while self.accum.len() <= slot {
            self.accum.push(Vec::new());
        }
        let a = &mut self.accum[slot];
        if a.len() != params.len() {
            a.resize(params.len(), 0.0);
        }
        for ((p, &g), ai) in params.iter_mut().zip(grads).zip(a.iter_mut()) {
            *ai += g * g;
            *p -= self.lr * g / (ai.sqrt() + self.eps);
        }
    }
}

/// Adam with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator floor.
    pub eps: f32,
    t: u32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard β values.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl DenseOptimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        while self.m.len() <= slot {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        if m.len() != params.len() {
            m.resize(params.len(), 0.0);
            v.resize(params.len(), 0.0);
        }
        let t = self.t.max(1) as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for (((p, &g), mi), vi) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x − 3)² from x = 0 with each optimizer.
    fn minimise(opt: &mut dyn DenseOptimizer, steps: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..steps {
            opt.begin_step();
            let g = [2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges() {
        let mut o = Sgd::new(0.1);
        let x = minimise(&mut o, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_converges() {
        let mut o = Sgd::with_momentum(0.05, 0.9);
        let x = minimise(&mut o, 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adagrad_converges() {
        let mut o = Adagrad::new(1.0);
        let x = minimise(&mut o, 500);
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn adam_converges() {
        let mut o = Adam::new(0.2);
        let x = minimise(&mut o, 300);
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn slots_are_independent() {
        let mut o = Adagrad::new(0.5);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        o.update(0, &mut a, &[1.0]);
        o.update(1, &mut b, &[100.0]);
        // Different accumulators: slot 1's huge gradient must not dampen
        // slot 0's next step.
        let a_before = a[0];
        o.update(0, &mut a, &[1.0]);
        assert!((a[0] - a_before).abs() > 0.1);
    }

    #[test]
    fn zero_gradient_no_move() {
        let mut o = Adam::new(0.1);
        let mut x = [1.5f32];
        o.begin_step();
        o.update(0, &mut x, &[0.0]);
        assert_eq!(x[0], 1.5);
    }
}
