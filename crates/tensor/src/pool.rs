//! A persistent row-panel worker pool for the GEMM kernels.
//!
//! [`GemmPool`] owns `threads − 1` helper threads; the caller participates
//! in every job, so a pool of 1 spawns nothing and costs nothing. A pool is
//! activated for the current thread with [`GemmPool::install`] — while the
//! guard closure runs, the `gemm_*` entry points in [`crate::gemm`] split
//! large products into disjoint row panels and fan them out. Threads not
//! inside an `install` scope (including the pool's own helpers) always run
//! sequentially, so nested products never recurse into the pool.
//!
//! Determinism: splitting a GEMM by output rows hands each element to
//! exactly one panel, and each panel computes it with the identical
//! per-element depth order as the sequential kernel (see the determinism
//! contract in `gemm.rs`). Any thread count is therefore bit-identical to
//! `threads = 1` — pinned by `pool_matches_sequential_bitwise` below.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    static CURRENT: RefCell<Option<Arc<GemmPool>>> = const { RefCell::new(None) };
}

/// The pool (if any) installed on the current thread.
pub(crate) fn current() -> Option<Arc<GemmPool>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// A lifetime-erased pointer to the current job's closure. Helpers only
/// dereference it between job publication and their completion count-down,
/// a window during which [`GemmPool::run`] keeps the real closure alive.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and `run` outlives every dereference.
unsafe impl Send for JobPtr {}

struct Slot {
    /// Bumped once per published job; helpers sleep until it changes.
    seq: u64,
    job: Option<JobPtr>,
    chunks: usize,
    /// Helpers that have not yet finished the current job.
    running: usize,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Wakes helpers when a job is published (or shutdown).
    go: Condvar,
    /// Wakes the caller when the last helper finishes.
    done: Condvar,
    /// Next unclaimed chunk index of the current job.
    next: AtomicUsize,
}

/// A fixed-size worker pool that fans row panels of one GEMM at a time out
/// across threads. See the module docs for the determinism argument.
pub struct GemmPool {
    shared: Arc<Shared>,
    helpers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl GemmPool {
    /// A pool executing jobs across `threads` threads (the calling thread
    /// plus `threads − 1` spawned helpers). `threads == 1` spawns nothing.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Arc<Self> {
        assert!(threads > 0, "pool must have at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                seq: 0,
                job: None,
                chunks: 0,
                running: 0,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let helpers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || helper_loop(&shared))
            })
            .collect();
        Arc::new(Self {
            shared,
            helpers,
            threads,
        })
    }

    /// Total threads participating in each job (callers + helpers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with this pool installed for the current thread: `gemm_*`
    /// calls made by `f` (directly or through layers) may parallelize.
    /// The previous installation (if any) is restored on exit.
    pub fn install<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(self)));
        struct Restore(Option<Arc<GemmPool>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// Executes `job(0..chunks)` across the pool, caller participating;
    /// returns once every chunk has completed.
    pub(crate) fn run(&self, chunks: usize, job: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.threads == 1 || chunks == 1 {
            for i in 0..chunks {
                job(i);
            }
            return;
        }
        // SAFETY: erases the borrow's lifetime; helpers stop touching the
        // pointer before the completion wait below returns, while `job` is
        // still borrowed.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(job)
        });
        {
            let mut slot = self.shared.slot.lock().unwrap();
            debug_assert!(slot.job.is_none(), "GemmPool::run is not reentrant");
            self.shared.next.store(0, Ordering::Relaxed);
            slot.job = Some(ptr);
            slot.chunks = chunks;
            slot.running = self.helpers.len();
            slot.seq += 1;
            self.shared.go.notify_all();
        }
        // Caller claims chunks alongside the helpers.
        loop {
            let i = self.shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= chunks {
                break;
            }
            job(i);
        }
        let mut slot = self.shared.slot.lock().unwrap();
        while slot.running > 0 {
            slot = self.shared.done.wait(slot).unwrap();
        }
        slot.job = None;
    }
}

impl Drop for GemmPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            self.shared.go.notify_all();
        }
        for h in self.helpers.drain(..) {
            let _ = h.join();
        }
    }
}

fn helper_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (ptr, chunks) = {
            let mut slot = shared.slot.lock().unwrap();
            while !slot.shutdown && slot.seq == seen {
                slot = shared.go.wait(slot).unwrap();
            }
            if slot.shutdown {
                return;
            }
            seen = slot.seq;
            (slot.job.expect("published job"), slot.chunks)
        };
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= chunks {
                break;
            }
            // SAFETY: `run` keeps the closure alive until we count down.
            unsafe { (*ptr.0)(i) };
        }
        let mut slot = shared.slot.lock().unwrap();
        slot.running -= 1;
        if slot.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// A raw `*mut f32` that may cross threads: each job writes a disjoint row
/// range of the shared output buffer.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub *mut f32);
// SAFETY: jobs slice disjoint regions; see each use site.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Splits `m` output rows into at most `parts` contiguous chunks, each a
/// multiple of `align` rows (except the last). Returns `(start, end)` pairs.
pub(crate) fn row_chunks(m: usize, parts: usize, align: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, m.max(1));
    let per = m.div_ceil(parts).div_ceil(align) * align;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    while start < m {
        let end = (start + per).min(m);
        out.push((start, end));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_chunks_cover_exactly() {
        for m in [1usize, 3, 4, 7, 16, 100, 257] {
            for parts in [1usize, 2, 3, 4, 8] {
                let chunks = row_chunks(m, parts, 4);
                assert!(chunks.len() <= parts);
                assert_eq!(chunks.first().unwrap().0, 0);
                assert_eq!(chunks.last().unwrap().1, m);
                for w in chunks.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "chunks must tile [0, m)");
                    assert_eq!(w[0].1 % 4, 0, "interior boundaries align");
                }
            }
        }
    }

    #[test]
    fn pool_runs_every_chunk_once() {
        let pool = GemmPool::new(4);
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn install_is_scoped_and_nested() {
        assert!(current().is_none());
        let a = GemmPool::new(2);
        let b = GemmPool::new(3);
        a.install(|| {
            assert_eq!(current().unwrap().threads(), 2);
            b.install(|| assert_eq!(current().unwrap().threads(), 3));
            assert_eq!(current().unwrap().threads(), 2);
        });
        assert!(current().is_none());
    }

    #[test]
    fn single_thread_pool_is_inline() {
        let pool = GemmPool::new(1);
        let mut hits = [false; 8];
        // With one thread `run` executes inline, so a mutable capture works
        // through a cell-free closure via interior atomics.
        let flags: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        pool.run(8, &|i| {
            flags[i].store(1, Ordering::Relaxed);
        });
        for (h, f) in hits.iter_mut().zip(&flags) {
            *h = f.load(Ordering::Relaxed) == 1;
        }
        assert!(hits.iter().all(|&h| h));
    }
}
