//! [`DenseTape`]: the reusable activation/gradient arena behind the
//! allocation-free dense forward/backward path.
//!
//! # Tape lifecycle
//!
//! Each worker owns one tape for the lifetime of a training run. Per batch:
//!
//! 1. `Mlp::forward_tape` writes every layer's activation into
//!    `acts[i]` (resized in place via [`Matrix::reset`], so after the first
//!    batch no buffer grows again — the last batch of an epoch may be
//!    *smaller*, which reuses capacity);
//! 2. the caller computes the loss gradient into its own scratch matrix
//!    from [`DenseTape::output`];
//! 3. `Mlp::backward_tape` ping-pongs upstream gradients between two
//!    buffers (`g_a`/`g_b`, swapped by pointer, never copied) and writes
//!    `dL/d-input` into caller scratch;
//! 4. the caller closes the batch with [`DenseTape::end_batch`], which
//!    snapshots total reserved bytes and — once the tape is warm — counts
//!    any growth as a `post_warmup_growth` event. A flat arena-bytes gauge
//!    plus a zero growth counter is the "zero steady-state allocations"
//!    assertion the perf baseline locks in.
//!
//! The tape also carries the GEMM flop counter the layers feed
//! (`dense.gemm_flops` telemetry).

use crate::matrix::Matrix;

/// Reusable arena of activation and gradient buffers for one worker's
/// dense forward/backward passes. See the module docs for the lifecycle.
#[derive(Default)]
pub struct DenseTape {
    /// `acts[i]` = output of layer `i` in the most recent `forward_tape`.
    pub(crate) acts: Vec<Matrix>,
    /// Ping-pong upstream-gradient buffers; `backward_tape` swaps them by
    /// pointer so the "current" gradient is always `g_a`.
    pub(crate) g_a: Matrix,
    pub(crate) g_b: Matrix,
    /// Accumulated GEMM flops (2 per multiply-add) since `reset_flops`.
    pub(crate) flops: u64,
    warm: bool,
    warm_bytes: usize,
    growth_events: u64,
}

impl DenseTape {
    /// Empty tape; buffers materialise on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `acts` holds at least `n` buffers (empty ones are cheap;
    /// they size themselves on first `forward_into`).
    pub(crate) fn ensure_acts(&mut self, n: usize) {
        while self.acts.len() < n {
            self.acts.push(Matrix::zeros(0, 0));
        }
    }

    /// The final activation of the most recent `forward_tape` (the logits
    /// for an [`crate::Mlp`] tower).
    ///
    /// # Panics
    /// Panics if no forward pass has run.
    pub fn output(&self) -> &Matrix {
        self.acts.last().expect("forward_tape before output")
    }

    /// Activation written by layer `i` in the most recent forward pass.
    pub fn act(&self, i: usize) -> &Matrix {
        &self.acts[i]
    }

    /// Adds GEMM flops performed on this tape's behalf.
    #[inline]
    pub fn add_flops(&mut self, f: u64) {
        self.flops += f;
    }

    /// Accumulated GEMM flops since the last [`Self::reset_flops`].
    #[inline]
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Resets the flop counter (typically after exporting to telemetry).
    pub fn reset_flops(&mut self) {
        self.flops = 0;
    }

    /// Total bytes currently reserved by the tape's own buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.acts.iter().map(Matrix::capacity_bytes).sum::<usize>()
            + self.g_a.capacity_bytes()
            + self.g_b.capacity_bytes()
    }

    /// Closes a batch: snapshots arena bytes (`extra_bytes` lets an owner
    /// fold in buffers it keeps outside the tape) and, once warm, counts
    /// growth events. The first call warms the tape.
    pub fn end_batch(&mut self, extra_bytes: usize) {
        let bytes = self.capacity_bytes() + extra_bytes;
        if self.warm && bytes > self.warm_bytes {
            self.growth_events += 1;
        }
        self.warm_bytes = self.warm_bytes.max(bytes);
        self.warm = true;
    }

    /// High-water arena bytes observed at batch boundaries (the
    /// `dense.arena_bytes` gauge).
    pub fn arena_bytes(&self) -> usize {
        self.warm_bytes
    }

    /// Number of batches (after the first) whose buffers grew — the
    /// steady-state allocation counter that must stay 0
    /// (`dense.tape.post_warmup_growth`).
    pub fn post_warmup_growth(&self) -> u64 {
        self.growth_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_then_flat_counts_no_growth() {
        let mut t = DenseTape::new();
        t.ensure_acts(2);
        t.acts[0].reset(8, 4);
        t.acts[1].reset(8, 1);
        t.end_batch(0); // warmup batch
        t.acts[0].reset(8, 4); // steady state: same shapes
        t.end_batch(0);
        t.acts[0].reset(3, 4); // smaller tail batch reuses capacity
        t.end_batch(0);
        assert_eq!(t.post_warmup_growth(), 0);
        assert!(t.arena_bytes() >= (8 * 4 + 8) * 4);
    }

    #[test]
    fn post_warmup_growth_detected() {
        let mut t = DenseTape::new();
        t.ensure_acts(1);
        t.acts[0].reset(4, 4);
        t.end_batch(0);
        t.acts[0].reset(64, 64); // grows after warmup
        t.end_batch(0);
        assert_eq!(t.post_warmup_growth(), 1);
    }

    #[test]
    fn flop_counter_accumulates_and_resets() {
        let mut t = DenseTape::new();
        t.add_flops(100);
        t.add_flops(23);
        assert_eq!(t.flops(), 123);
        t.reset_flops();
        assert_eq!(t.flops(), 0);
    }
}
