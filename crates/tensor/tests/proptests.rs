//! Property tests for the tensor substrate.

use hetgmp_tensor::{auc, bce_with_logits, Matrix, Mlp};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_identity(a in matrix(4, 4)) {
        let mut eye = Matrix::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, 1.0);
        }
        let out = a.matmul(&eye);
        for (x, y) in out.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        // a·(b + c) == a·b + a·c
        let mut bc = b.clone();
        for (x, y) in bc.data_mut().iter_mut().zip(c.data()) {
            *x += y;
        }
        let lhs = a.matmul(&bc);
        let ab = a.matmul(&b);
        let ac = a.matmul(&c);
        for i in 0..lhs.data().len() {
            let rhs = ab.data()[i] + ac.data()[i];
            prop_assert!((lhs.data()[i] - rhs).abs() < 1e-3,
                "{} vs {}", lhs.data()[i], rhs);
        }
    }

    #[test]
    fn transpose_variants_consistent(a in matrix(3, 5), b in matrix(3, 4)) {
        // aᵀ·b  computed directly == explicit transpose then matmul.
        let t = a.t_matmul(&b);
        // Build aᵀ explicitly.
        let mut at = Matrix::zeros(5, 3);
        for r in 0..3 {
            for c in 0..5 {
                at.set(c, r, a.get(r, c));
            }
        }
        let expected = at.matmul(&b);
        for (x, y) in t.data().iter().zip(expected.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn auc_invariant_under_monotone_transform(
        scores in prop::collection::vec(-10.0f32..10.0, 4..60),
        labels_bits in prop::collection::vec(prop::bool::ANY, 4..60),
    ) {
        let n = scores.len().min(labels_bits.len());
        let scores = &scores[..n];
        let labels: Vec<f32> = labels_bits[..n].iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let base = auc(scores, &labels);
        // Strictly increasing transform (sigmoid-ish) must preserve AUC.
        let transformed: Vec<f32> = scores.iter().map(|&s| 1.0 / (1.0 + (-0.5 * s).exp())).collect();
        let t = auc(&transformed, &labels);
        prop_assert!((base - t).abs() < 1e-9, "{base} vs {t}");
        prop_assert!((0.0..=1.0).contains(&base));
    }

    #[test]
    fn auc_complement_symmetry(
        scores in prop::collection::vec(-5.0f32..5.0, 4..40),
        labels_bits in prop::collection::vec(prop::bool::ANY, 4..40),
    ) {
        // Flipping labels and negating scores preserves AUC.
        let n = scores.len().min(labels_bits.len());
        let scores = &scores[..n];
        let labels: Vec<f32> = labels_bits[..n].iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let flipped_labels: Vec<f32> = labels.iter().map(|&l| 1.0 - l).collect();
        let negated: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let a1 = auc(scores, &labels);
        let a2 = auc(&negated, &flipped_labels);
        prop_assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
    }

    #[test]
    fn bce_gradient_sign_matches_error(z in -8.0f32..8.0, y in prop::bool::ANY) {
        let label = if y { 1.0f32 } else { 0.0 };
        let logits = Matrix::from_vec(1, 1, vec![z]);
        let (loss, grad) = bce_with_logits(&logits, &[label]);
        prop_assert!(loss >= 0.0);
        let p = 1.0 / (1.0 + (-z).exp());
        // grad sign equals sign of (p − y).
        prop_assert!((grad.get(0, 0) - (p - label)).abs() < 1e-5);
    }

    #[test]
    fn blocked_gemm_matches_naive_reference(a in matrix(5, 11), b in matrix(11, 9)) {
        // The blocked engine vs the pre-blocking naive kernel, on a shape
        // with both row and column tail loops in play.
        let blocked = a.matmul(&b);
        let naive = a.matmul_ref(&b);
        for (x, y) in blocked.data().iter().zip(naive.data()) {
            let tol = 1e-5 * y.abs().max(1.0);
            prop_assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn fused_bias_relu_equals_unfused_composition(
        a in matrix(6, 10),
        b in matrix(10, 7),
        bias in prop::collection::vec(-2.0f32..2.0, 7),
    ) {
        // matmul_bias_relu must be bit-for-bit the clamp of matmul_bias:
        // the fused kernel seeds the accumulator with the bias and clamps in
        // the write phase, so the pre-clamp value goes through the exact
        // same f32 operation sequence as the bias-only kernel.
        let mut with_bias = Matrix::zeros(0, 0);
        a.matmul_bias_into(&b, &bias, &mut with_bias);
        let mut fused = Matrix::zeros(0, 0);
        a.matmul_bias_relu_into(&b, &bias, &mut fused);
        for (f, u) in fused.data().iter().zip(with_bias.data()) {
            prop_assert_eq!(f.to_bits(), u.max(0.0).to_bits(), "{} vs {}", f, u);
        }
    }

    #[test]
    fn mlp_param_roundtrip(seed in 0u64..1000) {
        let mut mlp = Mlp::new(6, &[10, 4], seed);
        let flat = mlp.flatten_params();
        let mut other = Mlp::new(6, &[10, 4], seed.wrapping_add(1));
        other.load_params(&flat);
        prop_assert_eq!(other.flatten_params(), flat);
    }
}
