//! End-to-end CTR training comparison — the Figure 7 scenario at example
//! scale: five systems race to the same test-AUC target on one dataset.
//!
//! ```sh
//! cargo run --release --example ctr_training [scale] [epochs]
//! ```

use het_gmp::cluster::Topology;
use het_gmp::core::models::ModelKind;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.1);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let data = generate(&DatasetSpec::criteo_like(scale));
    println!(
        "training WDL on {} ({} samples, {} features) — 8 simulated GPUs (PCIe)\n",
        data.name,
        data.num_samples(),
        data.num_features
    );

    let topo = Topology::pcie_island(8);
    let systems = vec![
        StrategyConfig::tf_ps(),
        StrategyConfig::parallax(),
        StrategyConfig::hugectr(),
        StrategyConfig::het_mp(),
        StrategyConfig::het_cache(100, 0.01), // predecessor (HET, VLDB'22)
        StrategyConfig::het_gmp(100),
    ];

    let mut results = Vec::new();
    for strat in systems {
        let trainer = Trainer::new(
            &data,
            topo.clone(),
            strat,
            TrainerConfig {
                model: ModelKind::Wdl,
                epochs,
                ..Default::default()
            },
        );
        let r = trainer.run();
        println!(
            "{:<16} final AUC {:.4}   epoch time {:.4}s   comm share {:.0}%",
            r.strategy,
            r.final_auc,
            r.sim_time / epochs as f64,
            r.breakdown.comm_fraction() * 100.0
        );
        results.push(r);
    }

    // Convergence race: time for each system to reach 99% of the best AUC.
    let best = results.iter().map(|r| r.final_auc).fold(f64::MIN, f64::max);
    let target = best - 0.005;
    println!("\nAUC-vs-time race to {target:.4}:");
    for r in &results {
        match r.curve.iter().find(|p| p.auc >= target) {
            Some(p) => println!("  {:<16} reached at {:.4}s", r.strategy, p.sim_time),
            None => println!("  {:<16} did not reach the target", r.strategy),
        }
    }
}
