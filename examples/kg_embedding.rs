//! Knowledge-graph embedding on the HET-GMP substrate: train TransE over a
//! synthetic clustered KG with hybrid partitioning + bounded staleness.
//!
//! ```sh
//! cargo run --release --example kg_embedding
//! ```

use het_gmp::cluster::Topology;
use het_gmp::core::kg::{KgTrainer, KgTrainerConfig};
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::data::{generate_kg, KgSpec};

fn main() {
    let kg = generate_kg(&KgSpec::small());
    println!(
        "KG: {} entities / {} relations / {} triples",
        kg.num_entities,
        kg.num_relations,
        kg.len()
    );
    let result = KgTrainer::new(
        &kg,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(100),
        KgTrainerConfig {
            epochs: 10,
            ..Default::default()
        },
    )
    .run();
    println!(
        "{}: MRR {:.3}, hits@10 {:.3}, {:.0} triples/s, remote fetches/epoch {}",
        result.strategy,
        result.mrr,
        result.hits_at_10,
        result.throughput,
        result.partition_metrics.remote_fetches
    );
}
