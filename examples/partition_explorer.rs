//! Partition explorer: run every partitioning algorithm on one dataset's
//! bigraph and compare cut quality, balance, replication and the
//! worker-pair fetch heatmap (the Table 3 / Figure 9(b) view).
//!
//! ```sh
//! cargo run --release --example partition_explorer [partitions] [scale]
//! ```

use het_gmp::data::{generate, DatasetSpec};
use het_gmp::partition::{
    bicut_partition, random_partition, HybridConfig, HybridPartitioner, Partition,
    PartitionMetrics, ReplicationBudget,
};

fn describe(name: &str, part: &Partition, graph: &het_gmp::bigraph::Bigraph) {
    let m = PartitionMetrics::compute(graph, part, None);
    println!(
        "{name:<22} remote/epoch {:>9}  ({:.1}% of accesses)  sample-imbalance {:.3}  replication {:.3}",
        m.remote_fetches,
        m.remote_fraction() * 100.0,
        m.sample_imbalance(),
        m.replication_factor,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.1);

    let data = generate(&DatasetSpec::criteo_like(scale));
    let graph = data.to_bigraph();
    println!(
        "{}: {} samples, {} embeddings, {} edges — partitioning into {n}\n",
        data.name,
        graph.num_samples(),
        graph.num_embeddings(),
        graph.num_edges()
    );

    describe("random", &random_partition(&graph, n, 7), &graph);
    describe("bicut", &bicut_partition(&graph, n), &graph);

    for rounds in [1usize, 3, 5] {
        let (part, stats) = HybridPartitioner::new(HybridConfig {
            rounds,
            replication: None,
            ..Default::default()
        })
        .partition_rounds(&graph, n);
        describe(&format!("hybrid-1D ({rounds} rounds)"), &part, &graph);
        if rounds == 5 {
            for s in &stats {
                println!(
                    "    round {}: moved {:>6} vertices, remote {:>9}, {:.3}s",
                    s.round, s.moved, s.remote_fetches, s.elapsed_secs
                );
            }
        }
    }

    let (part, _) = HybridPartitioner::new(HybridConfig {
        rounds: 3,
        replication: Some(ReplicationBudget::FractionOfEmbeddings(0.01)),
        ..Default::default()
    })
    .partition_rounds(&graph, n);
    describe("hybrid-2D (top 1%)", &part, &graph);

    // Fetch heatmap for the final hybrid partition.
    let m = PartitionMetrics::compute(&graph, &part, None);
    println!("\nworker-pair fetch heatmap (rows: reading worker):");
    for row in &m.fetch_matrix {
        let cells: Vec<String> = row.iter().map(|c| format!("{c:>8}")).collect();
        println!("  {}", cells.join(""));
    }
}
