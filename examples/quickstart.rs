//! Quickstart: generate a small CTR dataset, partition its bigraph with
//! HET-GMP's hybrid algorithm, and train Wide & Deep on a simulated 4-GPU
//! server.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use het_gmp::cluster::Topology;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};
use het_gmp::partition::PartitionMetrics;

fn main() {
    // 1. A synthetic Avazu-shaped dataset (22 fields, Zipf-skewed features,
    //    planted co-access locality + a logistic ground truth).
    let spec = DatasetSpec::avazu_like(0.05);
    let data = generate(&spec);
    println!(
        "dataset: {} — {} samples x {} fields, {} features, CTR {:.3}",
        data.name,
        data.num_samples(),
        data.num_fields,
        data.num_features,
        data.ctr()
    );

    // 2. The bigraph view (paper §5.1) and its skewness.
    let graph = data.to_bigraph();
    let stats = het_gmp::bigraph::DegreeStats::embeddings(&graph);
    println!(
        "bigraph: {} edges; embedding degree gini {:.2}, hottest 1% of rows \
         serve {:.0}% of lookups",
        graph.num_edges(),
        stats.gini,
        stats.top1pct_mass * 100.0
    );

    // 3. Train HET-GMP (hybrid partitioning + bounded asynchrony, s = 100)
    //    on a simulated 4-GPU PCIe server, against the HET-MP baseline.
    //    The builder validates hyper-parameters up front.
    let topo = Topology::pcie_island(4);
    let config = TrainerConfig::builder()
        .epochs(3)
        .build()
        .expect("valid trainer config");
    for strat in [StrategyConfig::het_mp(), StrategyConfig::het_gmp(100)] {
        let trainer = Trainer::new(&data, topo.clone(), strat, config.clone());
        let result = trainer.run();
        let pm: &PartitionMetrics = result.partition_metrics.as_ref().expect("GPU strategy");
        println!(
            "\n{}\n  final AUC {:.4} | {:.0} samples/s (simulated) | \
             remote fetches/epoch {} | replication factor {:.3}",
            result.strategy,
            result.final_auc,
            result.throughput,
            pm.remote_fetches,
            pm.replication_factor
        );
        for point in &result.curve {
            println!(
                "    epoch {}: sim {:.4}s  AUC {:.4}",
                point.epoch, point.sim_time, point.auc
            );
        }
    }
}
