//! Staleness tuning: sweep the bounded-asynchrony threshold `s` and report
//! the quality/throughput trade-off (Table 2 plus its performance
//! complement) on one dataset.
//!
//! ```sh
//! cargo run --release --example staleness_tuning [scale] [epochs]
//! ```

use het_gmp::cluster::Topology;
use het_gmp::core::models::ModelKind;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};
use het_gmp::embedding::StalenessBound;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.1);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let data = generate(&DatasetSpec::avazu_like(scale));
    let topo = Topology::pcie_island(8);
    println!(
        "HET-GMP staleness sweep on {} — WDL, 8 simulated GPUs, {} epochs\n",
        data.name, epochs
    );
    println!(
        "{:<10} {:>9} {:>14} {:>16} {:>12}",
        "s", "AUC", "samples/s", "embed bytes", "syncs"
    );

    let bounds: Vec<(String, StalenessBound)> = vec![
        ("0".into(), StalenessBound::Bounded(0)),
        ("10".into(), StalenessBound::Bounded(10)),
        ("100".into(), StalenessBound::Bounded(100)),
        ("10000".into(), StalenessBound::Bounded(10_000)),
        ("inf".into(), StalenessBound::Infinite),
    ];
    for (label, bound) in bounds {
        let mut strat = StrategyConfig::het_gmp(0);
        strat.staleness = bound;
        strat.name = format!("HET-GMP(s={label})");
        let trainer = Trainer::new(
            &data,
            topo.clone(),
            strat,
            TrainerConfig {
                model: ModelKind::Wdl,
                epochs,
                ..Default::default()
            },
        );
        let r = trainer.run();
        println!(
            "{label:<10} {:>9.4} {:>14.0} {:>16} {:>12}",
            r.final_auc,
            r.throughput,
            r.traffic_bytes[0],
            r.traffic_bytes[1] / 12, // meta entries ≈ clock checks
        );
    }
    println!(
        "\nExpect: AUC flat for bounded s (robustness), degraded at s=inf; \
         traffic and sync counts fall as s grows."
    );
}
