#!/usr/bin/env sh
# Validates the shape of BENCH_hotpath.json (written by `make bench-baseline`
# / `make bench-smoke`): the top-level sections and every numeric field the
# perf tracking relies on must be present, and the recorded throughputs must
# be positive. Prints the batched-over-per-row speedup on success.
#
# Run from the repo root (make verify does). POSIX sh + grep/sed only — the
# file is single-line flat JSON emitted by our own renderer, so anchored
# grep is reliable.
set -eu

cd "$(dirname "$0")/.."

FILE=${1:-BENCH_hotpath.json}
[ -f "$FILE" ] || {
    echo "check_bench_schema: $FILE missing (run 'make bench-smoke' first)" >&2
    exit 1
}

fail=0

require() {
    # require <pattern> <description>
    if ! grep -qE "$1" "$FILE"; then
        echo "check_bench_schema: missing $2 (pattern: $1)" >&2
        fail=1
    fi
}

# Top-level sections.
for section in config per_row batched end_to_end; do
    require "\"$section\":\{" "section \"$section\""
done
require '"speedup":[0-9]' 'top-level "speedup"'

# Microbench sides: both carry throughput, lock traffic, and wall time.
for side in per_row batched; do
    for key in rows_per_sec lock_acquisitions wall_secs; do
        require "\"$side\":\{[^}]*\"$key\":[0-9-]" "\"$side.$key\""
    done
done

# End-to-end run fields.
for key in samples_per_sec lock_acquisitions samples_processed \
    batched_read_rows batched_apply_rows final_auc; do
    require "\"end_to_end\":\{[^}]*\"$key\":[0-9-]" "\"end_to_end.$key\""
done

# Config provenance: the workload must be reproducible.
for key in seed rows dim batch batches threads reps smoke; do
    require "\"config\":\{[^}]*\"$key\":" "\"config.$key\""
done

[ "$fail" -eq 0 ] || exit 1

# Sanity: throughputs are positive (a zero means the measurement broke).
for expr in '"rows_per_sec":0[,.]0*[,}]' '"samples_per_sec":0[,}]'; do
    if grep -qE "$expr" "$FILE"; then
        echo "check_bench_schema: zero throughput in $FILE" >&2
        exit 1
    fi
done

speedup=$(sed -n 's/.*"speedup":\([0-9.eE+-]*\).*/\1/p' "$FILE")
echo "check_bench_schema: OK ($FILE; batched/per-row speedup ${speedup}x)"
