#!/usr/bin/env sh
# Validates the shape of the locked-in perf baselines:
#
#   BENCH_hotpath.json  (make bench-baseline / bench-smoke) — batched vs
#   per-row embedding ops + end-to-end throughput;
#   BENCH_dense.json    (make bench-dense / bench-dense-smoke) — blocked vs
#   naive GEMM kernels + the allocation-free tape path's end-to-end run;
#   BENCH_pipeline.json (make bench-pipeline[-smoke]) — the same end-to-end
#   workload swept over software-pipeline depths {1,2,4};
#   BENCH_comms.json    (make bench-comms[-smoke]) — the AUC-vs-bytes sweep
#   over the sync wire formats (f32/f16/bf16/int8 + error feedback).
#
# The schema is picked from the file name (*.smoke.json siblings share the
# full-run schema). The top-level sections and every numeric field the perf
# tracking relies on must be present, throughputs must be positive, and the
# dense baseline's steady-state-allocation counter must be exactly 0. The
# committed (non-smoke) pipeline baseline must additionally beat the
# committed dense end-to-end samples/s at depth 2 — that regression gate is
# the point of the pipeline. Finally, every "NN.Nk samples/s" figure quoted
# in ROADMAP.md / CHANGES.md must match a samples_per_sec recorded in some
# committed BENCH_*.json to 0.1k — docs drifting from the locked-in
# baselines fail the check. Prints the speedup on success.
#
# Run from the repo root (make verify does). POSIX sh + grep/sed only — the
# file is single-line flat JSON emitted by our own renderer, so anchored
# grep is reliable.
set -eu

cd "$(dirname "$0")/.."

FILE=${1:-BENCH_hotpath.json}
[ -f "$FILE" ] || {
    echo "check_bench_schema: $FILE missing (run 'make bench-smoke' or 'make bench-dense-smoke' first)" >&2
    exit 1
}

fail=0

require() {
    # require <pattern> <description>
    if ! grep -qE "$1" "$FILE"; then
        echo "check_bench_schema: missing $2 (pattern: $1)" >&2
        fail=1
    fi
}

case $FILE in
*pipeline*)
    # ---- BENCH_pipeline.json ---------------------------------------------
    require '"config":\{' 'section "config"'
    require '"depths":\[' 'array "depths"'
    require '"speedup":[0-9]' 'top-level "speedup"'

    for depth in 1 2 4; do
        for key in samples_per_sec samples_per_cpu_sec stall_pct \
            overlap_ratio overhead_pct final_auc; do
            require "\"depth\":$depth,[^]]*\"$key\":[0-9-]" \
                "\"depths[depth=$depth].$key\""
        done
    done

    for key in preset scale workers system epochs reps batch dim seed \
        gemm_threads smoke; do
        require "\"config\":\{[^}]*\"$key\":" "\"config.$key\""
    done

    [ "$fail" -eq 0 ] || exit 1

    # Profiler-overhead budget: the stage profiler's self-measured cost must
    # stay under 2% of wall at every depth (the bench asserts this too; the
    # schema check catches a stale committed file).
    for pct in $(grep -oE '"overhead_pct":[0-9.eE+-]+' "$FILE" | sed 's/.*://'); do
        if ! awk -v p="$pct" 'BEGIN { exit !(p < 2.0) }'; then
            echo "check_bench_schema: overhead_pct $pct >= 2% budget in $FILE" >&2
            exit 1
        fi
    done

    # Sanity: every depth trained at a positive rate.
    if grep -qE '"samples_per_sec":0[,}]' "$FILE"; then
        echo "check_bench_schema: zero throughput in $FILE" >&2
        exit 1
    fi

    # The regression gate on the committed baseline: depth 2 must beat the
    # committed dense end-to-end figure (same workload, same seed). Smoke
    # runs are too small to measure throughput meaningfully, so only the
    # full run is gated.
    if grep -qE '"smoke":false' "$FILE" && [ -f BENCH_dense.json ]; then
        d2=$(sed -n 's/.*"depth":2,"samples_per_sec":\([0-9.eE+-]*\).*/\1/p' "$FILE")
        dense=$(sed -n 's/.*"end_to_end":{"samples_per_sec":\([0-9.eE+-]*\).*/\1/p' BENCH_dense.json)
        if [ -n "$d2" ] && [ -n "$dense" ]; then
            if ! awk -v a="$d2" -v b="$dense" 'BEGIN { exit !(a > b) }'; then
                echo "check_bench_schema: pipeline depth 2 ($d2 samples/s) does not beat the dense baseline ($dense samples/s)" >&2
                exit 1
            fi
        else
            echo "check_bench_schema: could not extract depth-2/dense samples_per_sec for the cross-check" >&2
            exit 1
        fi
    fi
    ;;
*dense*)
    # ---- BENCH_dense.json ------------------------------------------------
    for section in config gemm end_to_end; do
        require "\"$section\":\{" "section \"$section\""
    done
    require '"speedup":[0-9]' 'top-level "speedup"'

    for key in naive_gflops blocked_gflops wall_secs_naive wall_secs_blocked \
        flops_per_rep; do
        require "\"gemm\":\{[^}]*\"$key\":[0-9-]" "\"gemm.$key\""
    done

    for key in samples_per_sec dense_samples_per_sec gemm_flops arena_bytes \
        post_warmup_growth samples_processed final_auc; do
        require "\"end_to_end\":\{[^}]*\"$key\":[0-9-]" "\"end_to_end.$key\""
    done

    for key in seed batch features hidden square reps smoke; do
        require "\"config\":\{[^}]*\"$key\":" "\"config.$key\""
    done

    [ "$fail" -eq 0 ] || exit 1

    # Sanity: positive kernel and training throughput.
    for expr in '"naive_gflops":0[,.]0*[,}]' '"blocked_gflops":0[,.]0*[,}]' \
        '"samples_per_sec":0[,}]' '"dense_samples_per_sec":0[,}]'; do
        if grep -qE "$expr" "$FILE"; then
            echo "check_bench_schema: zero throughput in $FILE" >&2
            exit 1
        fi
    done
    # The zero-steady-state-allocations contract: any post-warmup tape
    # growth is a regression, fail loudly.
    if ! grep -qE '"post_warmup_growth":0(\.0*)?[,}]' "$FILE"; then
        echo "check_bench_schema: post_warmup_growth != 0 in $FILE (steady-state allocation regression)" >&2
        exit 1
    fi
    ;;
*comms*)
    # ---- BENCH_comms.json ------------------------------------------------
    require '"config":\{' 'section "config"'
    require '"formats":\[' 'array "formats"'
    require '"int8_reduction":[0-9]' 'top-level "int8_reduction"'

    for fmt in f32 f16 bf16 int8; do
        for key in embed_data_bytes allreduce_bytes quant_rows \
            quant_bytes_saved bytes_reduction final_auc auc_delta_pct \
            sim_time_secs; do
            require "\"format\":\"$fmt\",[^}]*\"$key\":[0-9-]" \
                "\"formats[format=$fmt].$key\""
        done
    done

    for key in preset scale workers system epochs batch dim seed \
        error_feedback smoke; do
        require "\"config\":\{[^}]*\"$key\":" "\"config.$key\""
    done

    [ "$fail" -eq 0 ] || exit 1

    # The identity transport must not meter quantized rows — a non-zero
    # count means the f32 path stopped being a no-op.
    if ! grep -qE '"format":"f32",[^}]*"quant_rows":0[,}]' "$FILE"; then
        echo "check_bench_schema: f32 row metered quantized rows in $FILE" >&2
        exit 1
    fi

    # The bytes contract: int8 must move at least 3.5x fewer embedding
    # bytes than f32 (structural — dim 32 wires 36 bytes vs 128).
    red=$(sed -n 's/.*"int8_reduction":\([0-9.eE+-]*\).*/\1/p' "$FILE")
    if ! awk -v r="$red" 'BEGIN { exit !(r >= 3.5) }'; then
        echo "check_bench_schema: int8_reduction $red below the 3.5x contract in $FILE" >&2
        exit 1
    fi

    # The accuracy contract on the committed baseline: int8's final AUC
    # within 0.5% of f32's. Smoke runs re-assert this inside the bench
    # binary; the schema gate exists to catch a stale committed file.
    if grep -qE '"smoke":false' "$FILE"; then
        delta=$(sed -n 's/.*"format":"int8",[^}]*"auc_delta_pct":\([0-9.eE+-]*\).*/\1/p' "$FILE")
        if ! awk -v d="$delta" 'BEGIN { a = d < 0 ? -d : d; exit !(a <= 0.5) }'; then
            echo "check_bench_schema: int8 auc_delta_pct $delta outside the 0.5% band in $FILE" >&2
            exit 1
        fi
    fi
    ;;
*)
    # ---- BENCH_hotpath.json ----------------------------------------------
    for section in config per_row batched end_to_end; do
        require "\"$section\":\{" "section \"$section\""
    done
    require '"speedup":[0-9]' 'top-level "speedup"'

    # Microbench sides: both carry throughput, lock traffic, and wall time.
    for side in per_row batched; do
        for key in rows_per_sec lock_acquisitions wall_secs; do
            require "\"$side\":\{[^}]*\"$key\":[0-9-]" "\"$side.$key\""
        done
    done

    # End-to-end run fields.
    for key in samples_per_sec lock_acquisitions samples_processed \
        batched_read_rows batched_apply_rows final_auc; do
        require "\"end_to_end\":\{[^}]*\"$key\":[0-9-]" "\"end_to_end.$key\""
    done

    # Config provenance: the workload must be reproducible.
    for key in seed rows dim batch batches threads reps smoke; do
        require "\"config\":\{[^}]*\"$key\":" "\"config.$key\""
    done

    [ "$fail" -eq 0 ] || exit 1

    # Sanity: throughputs are positive (a zero means the measurement broke).
    for expr in '"rows_per_sec":0[,.]0*[,}]' '"samples_per_sec":0[,}]'; do
        if grep -qE "$expr" "$FILE"; then
            echo "check_bench_schema: zero throughput in $FILE" >&2
            exit 1
        fi
    done
    ;;
esac

# ---- run-manifest stamp --------------------------------------------------
# Every bench artifact carries the manifest identifying the run that
# produced it (seed, config digest, build); `inspect diff` keys its
# mismatch warning off these fields.
require '"manifest":\{' 'top-level "manifest"'
for key in schema seed config_digest workers pipeline_depth gemm_threads \
    git_rev build_profile; do
    require "\"manifest\":\{[^}]*\"$key\":" "\"manifest.$key\""
done
[ "$fail" -eq 0 ] || exit 1

# ---- doc-drift check -----------------------------------------------------
# Every "NN.Nk samples/s" figure quoted in the tracking docs must match a
# samples_per_sec actually recorded in a committed BENCH_*.json (to 0.1k,
# i.e. the quoting precision). This is what catches a doc still citing a
# baseline from an older machine or run. TELEMETRY.md / README.md are in
# the list because their copy-pasteable `inspect` examples quote figures.
actuals=$(cat BENCH_hotpath.json BENCH_dense.json BENCH_pipeline.json 2>/dev/null |
    grep -oE '"(dense_)?samples_per_sec":[0-9.]+' | sed 's/.*://')
for doc in ROADMAP.md CHANGES.md TELEMETRY.md README.md; do
    [ -f "$doc" ] || continue
    for quote in $(grep -ohE '[0-9]+(\.[0-9]+)?k samples/s' "$doc" |
        sed 's/k samples.*//' | sort -u); do
        ok=$(printf '%s\n' $actuals | awk -v q="$quote" '
            BEGIN { found = 0 }
            { d = $1 / 1000 - q; if (d < 0.05 && d > -0.05) found = 1 }
            END { print found }')
        if [ "$ok" != 1 ]; then
            echo "check_bench_schema: $doc quotes ${quote}k samples/s but no committed BENCH_*.json records it (doc drifted from the locked-in baseline)" >&2
            exit 1
        fi
    done
done

# The comms sweep reports a byte-reduction ratio instead of a speedup.
speedup=$(sed -n 's/.*"speedup":\([0-9.eE+-]*\).*/\1/p' "$FILE")
[ -n "$speedup" ] || speedup=$(sed -n 's/.*"int8_reduction":\([0-9.eE+-]*\).*/\1/p' "$FILE")
echo "check_bench_schema: OK ($FILE; speedup ${speedup}x)"
