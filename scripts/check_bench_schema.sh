#!/usr/bin/env sh
# Validates the shape of the locked-in perf baselines:
#
#   BENCH_hotpath.json (make bench-baseline / bench-smoke) — batched vs
#   per-row embedding ops + end-to-end throughput;
#   BENCH_dense.json  (make bench-dense / bench-dense-smoke) — blocked vs
#   naive GEMM kernels + the allocation-free tape path's end-to-end run.
#
# The schema is picked from the file name. The top-level sections and every
# numeric field the perf tracking relies on must be present, throughputs
# must be positive, and the dense baseline's steady-state-allocation
# counter must be exactly 0. Prints the speedup on success.
#
# Run from the repo root (make verify does). POSIX sh + grep/sed only — the
# file is single-line flat JSON emitted by our own renderer, so anchored
# grep is reliable.
set -eu

cd "$(dirname "$0")/.."

FILE=${1:-BENCH_hotpath.json}
[ -f "$FILE" ] || {
    echo "check_bench_schema: $FILE missing (run 'make bench-smoke' or 'make bench-dense-smoke' first)" >&2
    exit 1
}

fail=0

require() {
    # require <pattern> <description>
    if ! grep -qE "$1" "$FILE"; then
        echo "check_bench_schema: missing $2 (pattern: $1)" >&2
        fail=1
    fi
}

case $FILE in
*dense*)
    # ---- BENCH_dense.json ------------------------------------------------
    for section in config gemm end_to_end; do
        require "\"$section\":\{" "section \"$section\""
    done
    require '"speedup":[0-9]' 'top-level "speedup"'

    for key in naive_gflops blocked_gflops wall_secs_naive wall_secs_blocked \
        flops_per_rep; do
        require "\"gemm\":\{[^}]*\"$key\":[0-9-]" "\"gemm.$key\""
    done

    for key in samples_per_sec dense_samples_per_sec gemm_flops arena_bytes \
        post_warmup_growth samples_processed final_auc; do
        require "\"end_to_end\":\{[^}]*\"$key\":[0-9-]" "\"end_to_end.$key\""
    done

    for key in seed batch features hidden square reps smoke; do
        require "\"config\":\{[^}]*\"$key\":" "\"config.$key\""
    done

    [ "$fail" -eq 0 ] || exit 1

    # Sanity: positive kernel and training throughput.
    for expr in '"naive_gflops":0[,.]0*[,}]' '"blocked_gflops":0[,.]0*[,}]' \
        '"samples_per_sec":0[,}]' '"dense_samples_per_sec":0[,}]'; do
        if grep -qE "$expr" "$FILE"; then
            echo "check_bench_schema: zero throughput in $FILE" >&2
            exit 1
        fi
    done
    # The zero-steady-state-allocations contract: any post-warmup tape
    # growth is a regression, fail loudly.
    if ! grep -qE '"post_warmup_growth":0(\.0*)?[,}]' "$FILE"; then
        echo "check_bench_schema: post_warmup_growth != 0 in $FILE (steady-state allocation regression)" >&2
        exit 1
    fi
    ;;
*)
    # ---- BENCH_hotpath.json ----------------------------------------------
    for section in config per_row batched end_to_end; do
        require "\"$section\":\{" "section \"$section\""
    done
    require '"speedup":[0-9]' 'top-level "speedup"'

    # Microbench sides: both carry throughput, lock traffic, and wall time.
    for side in per_row batched; do
        for key in rows_per_sec lock_acquisitions wall_secs; do
            require "\"$side\":\{[^}]*\"$key\":[0-9-]" "\"$side.$key\""
        done
    done

    # End-to-end run fields.
    for key in samples_per_sec lock_acquisitions samples_processed \
        batched_read_rows batched_apply_rows final_auc; do
        require "\"end_to_end\":\{[^}]*\"$key\":[0-9-]" "\"end_to_end.$key\""
    done

    # Config provenance: the workload must be reproducible.
    for key in seed rows dim batch batches threads reps smoke; do
        require "\"config\":\{[^}]*\"$key\":" "\"config.$key\""
    done

    [ "$fail" -eq 0 ] || exit 1

    # Sanity: throughputs are positive (a zero means the measurement broke).
    for expr in '"rows_per_sec":0[,.]0*[,}]' '"samples_per_sec":0[,}]'; do
        if grep -qE "$expr" "$FILE"; then
            echo "check_bench_schema: zero throughput in $FILE" >&2
            exit 1
        fi
    done
    ;;
esac

speedup=$(sed -n 's/.*"speedup":\([0-9.eE+-]*\).*/\1/p' "$FILE")
echo "check_bench_schema: OK ($FILE; speedup ${speedup}x)"
