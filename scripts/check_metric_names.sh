#!/usr/bin/env sh
# Lints metric-name hygiene, in both directions:
#
#   1. every dotted metric/trace name used as a string literal in Rust code
#      must be (or extend a prefix) defined in `hetgmp_telemetry::names`;
#   2. every constant in `hetgmp_telemetry::names` must be documented in
#      TELEMETRY.md;
#   3. every name the runtime *composes* at format! time (the per-stage
#      profiler histograms, the trace stage spans) and every run-manifest
#      field must be documented in TELEMETRY.md too — grep can't see these
#      as literals, so they are enumerated here.
#
# Run from the repo root (make verify does). POSIX sh + grep/sed/awk only.
set -eu

cd "$(dirname "$0")/.."

NAMES_RS=crates/telemetry/src/lib.rs
DOC=TELEMETRY.md

# The constant values, one per line, extracted from the names module.
consts=$(awk '/^pub mod names \{/,/^\}/' "$NAMES_RS" |
    sed -n 's/.*pub const [A-Z0-9_]*: &str = "\([^"]*\)";.*/\1/p')
[ -n "$consts" ] || { echo "check_metric_names: no constants found in $NAMES_RS" >&2; exit 1; }

# Every dotted string literal in the workspace that looks like a metric
# name (leading segment is one of our taxonomy roots).
used=$(grep -rhoE '"(traffic|time|embedding|partition|train|clock|protocol|trace|fault|checkpoint|hotpath|dense|pipeline|telemetry)\.[A-Za-z0-9_.]*"' \
        --include='*.rs' crates src tests examples 2>/dev/null |
    sed 's/"//g' | sort -u)

fail=0

for name in $used; do
    ok=0
    for c in $consts; do
        if [ "$name" = "$c" ]; then
            ok=1
            break
        fi
        # Prefix constants end in "."; suffixed uses are fine.
        case $c in
        *.)
            case $name in
            "$c"*) ok=1 ;;
            esac
            ;;
        esac
        [ $ok -eq 1 ] && break
    done
    if [ $ok -eq 0 ]; then
        echo "check_metric_names: literal \"$name\" is not defined in hetgmp_telemetry::names" >&2
        fail=1
    fi
done

for c in $consts; do
    # Prefix constants are documented with a placeholder suffix
    # (e.g. `traffic.messages.<class>`), so match without the trailing dot.
    probe=${c%.}
    if ! grep -qF "$probe" "$DOC"; then
        echo "check_metric_names: \"$c\" is not documented in $DOC" >&2
        fail=1
    fi
done

# Names emitted via format! composition (invisible to the literal scan) and
# the run-manifest fields every artifact is stamped with. Each must appear
# in TELEMETRY.md verbatim.
emitted="
pipeline.stage.<stage>.wall_secs
pipeline.stage.<stage>.sim_secs
telemetry.overhead_secs
trace.stage.<stage>
config_digest
pipeline_depth
gemm_threads
git_rev
build_profile
"
for name in $emitted; do
    if ! grep -qF "$name" "$DOC"; then
        echo "check_metric_names: emitted name \"$name\" is not documented in $DOC" >&2
        fail=1
    fi
done

if [ $fail -ne 0 ]; then
    exit 1
fi
echo "check_metric_names: OK ($(echo "$consts" | wc -l | tr -d ' ') constants, $(echo "$used" | wc -l | tr -d ' ') literals)"
