#!/usr/bin/env sh
# Fault-matrix smoke: drives the release `train` CLI through the three
# injected-failure classes — worker crash (with checkpointing), worker
# stall, and link degradation — each under `--audit=strict`, so the
# bounded-staleness invariant is machine-checked while faults fire.
#
# Run from the repo root (make verify does). Builds nothing: expects
# `cargo build --release` to have produced target/release/het-gmp.
set -eu

cd "$(dirname "$0")/.."

BIN=target/release/het-gmp
[ -x "$BIN" ] || { echo "fault_matrix: $BIN missing (run make build first)" >&2; exit 1; }

TMP=$(mktemp -d "${TMPDIR:-/tmp}/hetgmp-fault-matrix.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

COMMON="--preset tiny --system het-gmp --staleness 0 --workers 2 --epochs 2 --audit=strict --seed 42"

run_case() {
    name=$1
    shift
    echo "fault_matrix: $name"
    if ! "$BIN" train $COMMON "$@" > "$TMP/$name.log" 2>&1; then
        echo "fault_matrix: $name FAILED" >&2
        cat "$TMP/$name.log" >&2
        exit 1
    fi
}

# 1. Crash + periodic checkpoint: worker 1 dies just after training
#    starts, restores from the checkpoint image, and the run completes.
run_case crash \
    --faults 'crash@1:0.000001' \
    --checkpoint-every 1 --checkpoint-dir "$TMP/ckpts"
grep -q 'faults: 1 crash' "$TMP/crash.log" || {
    echo "fault_matrix: crash run reported no crash" >&2
    cat "$TMP/crash.log" >&2
    exit 1
}
[ -f "$TMP/ckpts/ckpt-epoch-1.hgmr" ] || {
    echo "fault_matrix: no checkpoint written" >&2
    exit 1
}

# 2. Stall: worker 0 freezes for 5 simulated milliseconds at t=0.
run_case stall --faults 'stall@0:0.0:0.005'
grep -q '1 stall' "$TMP/stall.log" || {
    echo "fault_matrix: stall run reported no stall" >&2
    cat "$TMP/stall.log" >&2
    exit 1
}

# 3. Link degradation: the 0-1 link runs 8x slower for a window.
run_case degrade --faults 'degrade@0-1:0.0:0.01:8'

# 4. Crash under the compressed wire: same crash + restore with the int8
#    transport (error feedback on by default); the re-primed replicas and
#    every subsequent sync must keep the strict audit clean.
run_case crash-int8 \
    --faults 'crash@1:0.000001' --sync-format int8 \
    --checkpoint-every 1 --checkpoint-dir "$TMP/ckpts-int8"
grep -q 'faults: 1 crash' "$TMP/crash-int8.log" || {
    echo "fault_matrix: int8 crash run reported no crash" >&2
    cat "$TMP/crash-int8.log" >&2
    exit 1
}

echo "fault_matrix: OK (crash, stall, degrade, int8-crash all recovered under strict audit)"
