#!/usr/bin/env sh
# End-to-end smoke of the `het-gmp inspect` subcommand.
#
# A tiny fixed-seed pipelined training run writes a telemetry JSONL log and
# a sync-level Chrome trace; then all three inspect modes run over them:
#
#   * `report`   — rendered output (deterministic sections only) must match
#                  the committed golden byte-for-byte. The manifest line is
#                  filtered out before comparing: its git_rev changes every
#                  commit by design.
#   * `pipeline` — the ASCII gantt must render every pipeline stage.
#   * `diff`     — a run diffed against itself must exit 0; the same log
#                  with an injected AUC drop must exit 1.
#
# Run from the repo root (make inspect-smoke / make verify does). Needs the
# release binary (make build). POSIX sh + grep/sed/diff only.
set -eu

cd "$(dirname "$0")/.."

BIN=target/release/het-gmp
[ -x "$BIN" ] || { echo "inspect_smoke: $BIN missing (run 'make build' first)" >&2; exit 1; }
OUT=target/inspect-smoke
GOLDEN=tests/golden/inspect_report_tiny.txt
mkdir -p "$OUT"

"$BIN" train --preset tiny --workers 4 --system het-gmp --epochs 2 --seed 7 \
    --pipeline-depth 2 --telemetry "$OUT/run.jsonl" \
    --trace "$OUT/run.trace.json" --trace-level sync > /dev/null

# --- report vs golden ------------------------------------------------------
"$BIN" inspect report "$OUT/run.jsonl" | grep -v '^manifest:' > "$OUT/report.txt"
if ! diff -u "$GOLDEN" "$OUT/report.txt"; then
    echo "inspect_smoke: report drifted from $GOLDEN (regenerate it if the change is intended)" >&2
    exit 1
fi

# --- gantt renders every stage --------------------------------------------
"$BIN" inspect pipeline "$OUT/run.trace.json" > "$OUT/gantt.txt"
for stage in fetch compute write_back sync; do
    if ! grep -q "$stage" "$OUT/gantt.txt"; then
        echo "inspect_smoke: stage \"$stage\" missing from the gantt output" >&2
        exit 1
    fi
done

# --- diff: clean self-compare, loud injected regression -------------------
"$BIN" inspect diff "$OUT/run.jsonl" "$OUT/run.jsonl" > /dev/null

sed 's/"auc":[0-9.eE+-]*/"auc":0.01/g' "$OUT/run.jsonl" > "$OUT/regressed.jsonl"
if "$BIN" inspect diff "$OUT/run.jsonl" "$OUT/regressed.jsonl" > /dev/null 2>&1; then
    echo "inspect_smoke: injected AUC regression was not detected (expected exit 1)" >&2
    exit 1
fi

echo "inspect_smoke: OK (report golden, gantt stages, diff exit codes)"
