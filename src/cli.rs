//! Command-line argument handling for the `het-gmp` binary.
//!
//! Hand-rolled `--flag value` parsing (no external dependency): every
//! subcommand sees a [`Args`] map plus positional arguments.

use std::collections::HashMap;

/// Parsed command line: positionals + `--flag value` options.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order (subcommand first).
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// `--flag value` and `--flag=value` are both accepted; a trailing
    /// `--flag` with no value stores an empty string (presence flag).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else {
                    let value = match iter.peek() {
                        Some(next) if !next.starts_with("--") => {
                            iter.next().expect("peeked")
                        }
                        _ => String::new(),
                    };
                    out.flags.insert(name.to_string(), value);
                }
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// The subcommand (first positional), if any.
    pub fn command(&self) -> Option<&str> {
        self.positional.first().map(String::as_str)
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// True when `--name` appeared (with or without value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Typed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse("train --scale 0.5 --workers 8 extra");
        assert_eq!(a.command(), Some("train"));
        assert_eq!(a.positional, vec!["train", "extra"]);
        assert_eq!(a.get("scale"), Some("0.5"));
        assert_eq!(a.get_or("workers", 1usize), 8);
        assert_eq!(a.get_or("missing", 3usize), 3);
    }

    #[test]
    fn equals_form_and_presence() {
        let a = parse("gen --preset=criteo --verbose");
        assert_eq!(a.get("preset"), Some("criteo"));
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose"), Some(""));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("x --a --b 2");
        assert_eq!(a.get("a"), Some(""));
        assert_eq!(a.get_or("b", 0), 2);
    }

    #[test]
    fn bad_parse_falls_back() {
        let a = parse("x --n notanumber");
        assert_eq!(a.get_or("n", 7usize), 7);
    }

    #[test]
    fn empty() {
        let a = Args::parse(Vec::<String>::new());
        assert_eq!(a.command(), None);
    }
}
