#![warn(missing_docs)]

//! # het-gmp
//!
//! Umbrella crate for the HET-GMP reproduction (SIGMOD 2022): re-exports every
//! subsystem crate under one namespace. See `README.md` for a tour and
//! `DESIGN.md` for the system inventory.
//!
//! ```
//! use het_gmp::bigraph::Bigraph;
//!
//! let g = Bigraph::from_samples(4, &[vec![0, 1], vec![1, 2, 3]]);
//! assert_eq!(g.emb_frequency(1), 2);
//! ```

pub use hetgmp_bigraph as bigraph;
pub use hetgmp_cluster as cluster;
pub use hetgmp_comms as comms;
pub use hetgmp_core as core;
pub use hetgmp_data as data;
pub use hetgmp_embedding as embedding;
pub use hetgmp_inspect as inspect;
pub use hetgmp_partition as partition;
pub use hetgmp_telemetry as telemetry;
pub use hetgmp_tensor as tensor;
