//! `het-gmp` — the command-line face of the HET-GMP reproduction.
//!
//! ```text
//! het-gmp gen        --preset avazu|criteo|company --scale 0.1 --out data.svm
//! het-gmp partition  --in data.svm --fields 22 --workers 8 --algo hybrid|random|bicut|multilevel
//! het-gmp train      --preset criteo --scale 0.1 --system het-gmp --staleness 100
//!                    [--telemetry out.jsonl] [--trace out.trace.json] [--audit[=strict]]
//! het-gmp capacity   --workers 24 --mem-gb 32 --dim 128
//! het-gmp experiment fig1|fig3|fig7|fig8|fig9|fig10|table2|table3|ablation|all [--telemetry out.jsonl]
//! het-gmp inspect    report run.jsonl | pipeline run.trace.json | diff base.json cand.json
//! ```
//!
//! Errors surface as [`HetGmpError`] with BSD `sysexits`-style exit codes:
//! 2 = usage, 65 = bad data/checkpoint, 70 = audit violation (strict),
//! 74 = I/O, 78 = bad config.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::sync::Arc;

use het_gmp::cluster::{FaultSchedule, Topology};
use het_gmp::comms::SyncFormat;
use het_gmp::core::experiments;
use het_gmp::core::models::ModelKind;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{TrainResult, Trainer, TrainerConfig};
use het_gmp::data::{generate, read_libsvm, write_libsvm, CtrDataset, DatasetSpec};
use het_gmp::embedding::CapacityPlan;
use het_gmp::partition::{
    BiCutPartitioner, HybridConfig, HybridPartitioner, MultilevelPartitioner, PartitionMetrics,
    Partitioner, RandomPartitioner,
};
use het_gmp::inspect::{diff_artifacts, render_gantt, render_report, Artifact, DiffOptions};
use het_gmp::telemetry::{
    AuditMode, HetGmpError, Json, JsonlWriter, RunManifest, TraceCollector, TraceLevel,
};

mod cli;
use cli::Args;

const USAGE: &str = "usage: het-gmp <gen|partition|train|capacity|experiment|inspect> [--flags]
  gen        --preset avazu|criteo|company|tiny --scale F --out FILE
  partition  (--in FILE --fields N | --preset P --scale F) --workers N --algo hybrid|random|bicut|multilevel [--rounds N]
  train      (--in FILE --fields N | --preset P --scale F) --system tf-ps|parallax|hugectr|het-mp|het-gmp
             [--staleness N] [--workers N] [--epochs N] [--model wdl|dcn|deepfm|din] [--seed N]
             [--telemetry FILE.jsonl] [--trace FILE.trace.json] [--trace-level batch|sync]
             [--audit[=count|strict]] [--faults SPEC] [--checkpoint-every N --checkpoint-dir DIR]
             [--resume FILE.hgmr] [--pipeline-depth N] [--gemm-threads N]
             [--sync-format f32|f16|bf16|int8] [--sync-feedback on|off]
  capacity   --workers N --mem-gb G --dim D [--replication F]
  experiment fig1|fig3|fig7|fig8|fig9|fig10|table2|table3|ablation|all [--scale F] [--telemetry FILE.jsonl]
             [--trace FILE.trace.json] [--trace-level batch|sync] [--audit[=count|strict]]
             [--pipeline-depth N] [--gemm-threads N] [--sync-format F] [--sync-feedback on|off]
  inspect    report FILE.jsonl [--wall]
             pipeline FILE.trace.json
             diff BASELINE CANDIDATE [--threshold PCT]

  --telemetry/--trace accept '-' to write to stdout. --trace captures a
  Chrome trace-event timeline (open in Perfetto); --audit checks every
  embedding read against the staleness bound (strict mode fails the run
  on the first violation, exit code 70).

  --faults injects a deterministic fault schedule at simulated times;
  clauses are separated by ';':
    crash@W:T          worker W (or '*') crashes at T seconds
    stall@W:T:D        worker W stalls for D seconds at T
    degrade@A-B:T:D:F  link A-B runs F x slower for D seconds from T
    partition@A-B:T:D  link A-B is cut for D seconds from T
    restart=S          process-restart overhead charged per crash
  Crash recovery restores from the last checkpoint image, so schedules
  with crashes pair naturally with --checkpoint-every N --checkpoint-dir
  DIR (writes DIR/ckpt-epoch-N.hgmr; resume with --resume FILE).

  --pipeline-depth N (1..=8, default 1) runs each worker's embedding
  fetch for the next batch on a companion thread while the current batch
  syncs; --gemm-threads N (1..=32, default 1) splits large dense GEMMs
  into row panels. Both are bit-identical to the sequential schedule on
  fault-free runs. On 'experiment' they apply to every fig8/table2/
  ablation training run.

  --sync-format picks the wire encoding for inter-worker embedding rows
  and the dense AllReduce payload: f32 (default, bit-exact), f16, bf16,
  or int8 (per-row scale + 1 byte/element, ~3.6x fewer embedding bytes at
  dim 32). Traffic ledgers and the cost model charge the compressed wire
  size; checkpoints stay f32 and any format bit-matches itself across
  pipeline depths and checkpoint resume. --sync-feedback off disables the
  per-row error-feedback accumulator on lossy gradient pushes (on by
  default; no effect under f32). On 'experiment' both apply to every
  fig8/table2/ablation training run.

  'inspect' analyses the artifacts those runs leave behind. 'report'
  renders the Fig. 8 traffic/time breakdown and the per-epoch pipeline
  occupancy timeline from a telemetry JSONL (--wall adds nondeterministic
  wall-clock stage histograms). 'pipeline' draws an ASCII per-track
  occupancy gantt from a Chrome trace. 'diff' compares two telemetry
  logs or two BENCH_*.json files metric by metric, warns when the runs'
  manifests disagree, and exits 1 when a directional metric regresses
  by more than --threshold PCT (default 5).";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    if args.has("help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match args.command() {
        Some("gen") => cmd_gen(&args),
        Some("partition") => cmd_partition(&args),
        Some("train") => cmd_train(&args),
        Some("capacity") => cmd_capacity(&args),
        Some("experiment") => cmd_experiment(&args),
        // `inspect diff` signals regressions through the exit code (1), which
        // is distinct from the sysexits error path below.
        Some("inspect") => {
            return match cmd_inspect(&args) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(e.exit_code())
                }
            }
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn spec_from(args: &Args) -> Result<DatasetSpec, HetGmpError> {
    let scale: f64 = args.get_or("scale", 0.1);
    match args.get("preset").unwrap_or("avazu") {
        "avazu" => Ok(DatasetSpec::avazu_like(scale)),
        "criteo" => Ok(DatasetSpec::criteo_like(scale)),
        "company" => Ok(DatasetSpec::company_like(scale)),
        "tiny" => Ok(DatasetSpec::tiny()),
        other => Err(HetGmpError::usage(format!("unknown preset {other:?}"))),
    }
}

/// Attaches a file path to errors raised from an anonymous reader (the
/// libsvm parser sees only a `BufRead`, not the file it came from).
fn attribute(e: HetGmpError, path: &str) -> HetGmpError {
    match e {
        HetGmpError::Data {
            path: None,
            line,
            reason,
        } => HetGmpError::data(path, line, reason),
        HetGmpError::Io { source, .. } => HetGmpError::io(path, source),
        other => other,
    }
}

fn load_dataset(args: &Args) -> Result<CtrDataset, HetGmpError> {
    if let Some(path) = args.get("in") {
        let fields: usize = args
            .get("fields")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| HetGmpError::usage("--in requires --fields N"))?;
        let file = File::open(path).map_err(|e| HetGmpError::io(path, e))?;
        read_libsvm(BufReader::new(file), fields).map_err(|e| attribute(e, path))
    } else {
        Ok(generate(&spec_from(args)?))
    }
}

/// Opens the `--telemetry FILE.jsonl` sink when requested (`-` = stdout).
fn telemetry_sink(args: &Args) -> Result<Option<JsonlWriter>, HetGmpError> {
    match args.get("telemetry") {
        Some("") => Err(HetGmpError::usage("--telemetry requires a file path")),
        other => other.map(JsonlWriter::create).transpose(),
    }
}

/// Builds the `--trace FILE` collector when requested (`-` = stdout).
/// `--trace-level batch|sync` picks the event granularity (default batch:
/// epoch/batch/link spans only; sync adds per-read protocol instants).
fn trace_collector(
    args: &Args,
    num_workers: usize,
) -> Result<Option<(Arc<TraceCollector>, String)>, HetGmpError> {
    let Some(path) = args.get("trace") else {
        if args.has("trace-level") {
            return Err(HetGmpError::usage("--trace-level requires --trace FILE"));
        }
        return Ok(None);
    };
    if path.is_empty() {
        return Err(HetGmpError::usage("--trace requires a file path"));
    }
    let level = match args.get("trace-level") {
        None => TraceLevel::Batch,
        Some(s) => TraceLevel::parse(s).ok_or_else(|| {
            HetGmpError::usage(format!("unknown trace level {s:?} (batch|sync)"))
        })?,
    };
    let collector = Arc::new(TraceCollector::new(num_workers, level));
    Ok(Some((collector, path.to_string())))
}

/// Parses an optional integer flag, distinguishing "absent" (`None`) from
/// "present but malformed" (usage error) — a typo must not silently fall
/// back to the default.
fn parse_flag_usize(args: &Args, key: &str) -> Result<Option<usize>, HetGmpError> {
    match args.get(key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            HetGmpError::usage(format!("--{key} requires a positive integer, got {v:?}"))
        }),
    }
}

/// Parses `--sync-format f32|f16|bf16|int8` (`None` when absent).
fn sync_format_flag(args: &Args) -> Result<Option<SyncFormat>, HetGmpError> {
    args.get("sync-format").map(SyncFormat::parse).transpose()
}

/// Parses `--sync-feedback on|off` (`None` when absent; the trainer
/// defaults to on). A bare `--sync-feedback` means on.
fn sync_feedback_flag(args: &Args) -> Result<Option<bool>, HetGmpError> {
    match args.get("sync-feedback") {
        None => Ok(None),
        Some("on") | Some("") => Ok(Some(true)),
        Some("off") => Ok(Some(false)),
        Some(v) => Err(HetGmpError::usage(format!(
            "--sync-feedback expects on|off, got {v:?}"
        ))),
    }
}

/// Parses `--audit[=count|strict|off]`; a bare `--audit` means count.
fn audit_mode(args: &Args) -> Result<AuditMode, HetGmpError> {
    match args.get("audit") {
        None => Ok(AuditMode::Off),
        Some(s) => AuditMode::parse(s).ok_or_else(|| {
            HetGmpError::usage(format!("unknown audit mode {s:?} (count|strict|off)"))
        }),
    }
}

/// Exports a collected trace, reporting where it went (unless stdout).
fn write_trace(trace: &Option<(Arc<TraceCollector>, String)>) -> Result<(), HetGmpError> {
    if let Some((t, path)) = trace {
        t.write_chrome_trace(path)?;
        if path != "-" {
            println!("trace: {path}");
        }
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), HetGmpError> {
    let data = generate(&spec_from(args)?);
    let out = args
        .get("out")
        .ok_or_else(|| HetGmpError::usage("--out FILE required"))?;
    let file = File::create(out).map_err(|e| HetGmpError::io(out, e))?;
    write_libsvm(&data, BufWriter::new(file)).map_err(|e| HetGmpError::io(out, e))?;
    println!(
        "wrote {}: {} samples x {} fields, {} features, CTR {:.3}",
        out,
        data.num_samples(),
        data.num_fields,
        data.num_features,
        data.ctr()
    );
    Ok(())
}

fn cmd_partition(args: &Args) -> Result<(), HetGmpError> {
    let data = load_dataset(args)?;
    let graph = data.to_bigraph();
    let n: usize = args.get_or("workers", 8);
    let topo = Topology::pcie_island(n);
    // Every algorithm runs through the one `Partitioner` interface.
    let algo: Box<dyn Partitioner> = match args.get("algo").unwrap_or("hybrid") {
        "random" => Box::new(RandomPartitioner { seed: 7 }),
        "bicut" => Box::new(BiCutPartitioner),
        "multilevel" => Box::new(MultilevelPartitioner::default()),
        "hybrid" => Box::new(HybridPartitioner::new(HybridConfig {
            rounds: args.get_or("rounds", 3),
            ..Default::default()
        })),
        other => return Err(HetGmpError::usage(format!("unknown algorithm {other:?}"))),
    };
    let part = algo.partition(&graph, &topo);
    let m = PartitionMetrics::compute(&graph, &part, None);
    println!(
        "{} over {} workers: remote fetches/epoch {} ({:.1}% of accesses), \
         sample imbalance {:.3}, replication factor {:.3}",
        algo.name(),
        n,
        m.remote_fetches,
        m.remote_fraction() * 100.0,
        m.sample_imbalance(),
        m.replication_factor
    );
    Ok(())
}

/// Dumps one JSONL record per evaluation point plus the merged final
/// telemetry snapshot (counters include the `traffic.bytes.*` per-class
/// totals the Figure 8 analysis consumes).
fn dump_train_telemetry(w: &mut JsonlWriter, r: &TrainResult) -> Result<(), HetGmpError> {
    w.write_record(&r.manifest.to_record())?;
    for p in &r.curve {
        w.write_record(&Json::Obj(vec![
            ("event".into(), Json::from("epoch")),
            ("epoch".into(), Json::U64(p.epoch as u64)),
            ("sim_time_secs".into(), Json::F64(p.sim_time)),
            ("auc".into(), Json::F64(p.auc)),
            ("log_loss".into(), Json::F64(p.log_loss)),
            ("stage_occupancy".into(), Json::F64(p.stage_occupancy)),
            ("stall_secs".into(), Json::F64(p.stall_secs)),
        ]))?;
    }
    w.write_snapshot(
        "final",
        &[
            ("system", Json::from(r.strategy.as_str())),
            ("auc", Json::F64(r.final_auc)),
        ],
        &r.telemetry,
    )?;
    w.flush()
}

fn cmd_train(args: &Args) -> Result<(), HetGmpError> {
    let data = load_dataset(args)?;
    let n: usize = args.get_or("workers", 8);
    let mut telemetry = telemetry_sink(args)?;
    let strat = match args.get("system").unwrap_or("het-gmp") {
        "tf-ps" => StrategyConfig::tf_ps(),
        "parallax" => StrategyConfig::parallax(),
        "hugectr" => StrategyConfig::hugectr(),
        "het-mp" => StrategyConfig::het_mp(),
        "het-gmp" => StrategyConfig::het_gmp(args.get_or("staleness", 100)),
        other => return Err(HetGmpError::usage(format!("unknown system {other:?}"))),
    };
    let model = match args.get("model").unwrap_or("wdl") {
        "wdl" => ModelKind::Wdl,
        "dcn" => ModelKind::Dcn,
        "deepfm" => ModelKind::DeepFm,
        "din" => ModelKind::Din,
        other => return Err(HetGmpError::usage(format!("unknown model {other:?}"))),
    };
    let seed: u64 = args.get_or("seed", 42);
    let cfg = TrainerConfig::builder()
        .model(model)
        .epochs(args.get_or("epochs", 3))
        .batch_size(args.get_or("batch", 256))
        .dim(args.get_or("dim", 16))
        .seed(seed)
        .checkpoint_every(args.get_or("checkpoint-every", 0usize))
        .checkpoint_dir(args.get("checkpoint-dir").map(std::path::PathBuf::from))
        .resume_from(args.get("resume").map(std::path::PathBuf::from))
        .pipeline_depth(parse_flag_usize(args, "pipeline-depth")?.unwrap_or(1))
        .gemm_threads(parse_flag_usize(args, "gemm-threads")?.unwrap_or(1))
        .sync_format(sync_format_flag(args)?.unwrap_or(SyncFormat::F32))
        .sync_error_feedback(sync_feedback_flag(args)?.unwrap_or(true))
        .build()?;
    let faults = match args.get("faults") {
        None => None,
        Some(spec) => Some(Arc::new(FaultSchedule::parse(spec, n, seed).map_err(
            |e| HetGmpError::usage(format!("bad --faults spec: {e}")),
        )?)),
    };
    let trace = trace_collector(args, n)?;
    let mut trainer = Trainer::new(&data, Topology::pcie_island(n), strat, cfg)
        .with_audit(audit_mode(args)?);
    if let Some((t, _)) = &trace {
        trainer = trainer.with_tracer(Arc::clone(t));
    }
    if let Some(f) = &faults {
        trainer = trainer.with_faults(Arc::clone(f));
    }
    let r = trainer.try_run()?;
    println!(
        "{} ({}): final AUC {:.4}, {:.0} samples/s simulated, comm share {:.0}%",
        r.strategy,
        model.name(),
        r.final_auc,
        r.throughput,
        r.breakdown.comm_fraction() * 100.0
    );
    for p in &r.curve {
        println!("  epoch {}: sim {:.4}s AUC {:.4}", p.epoch, p.sim_time, p.auc);
    }
    if faults.is_some() {
        let crashes = r.telemetry.counter("fault.crashes");
        let stalls = r.telemetry.counter("fault.stalls");
        println!(
            "faults: {crashes} crash(es), {stalls} stall(s), {:.4}s downtime simulated",
            r.breakdown.fault
        );
    }
    if let Some(w) = telemetry.as_mut() {
        dump_train_telemetry(w, &r)?;
        println!("telemetry: {}", w.path().display());
    }
    write_trace(&trace)?;
    if let Some(a) = &r.audit {
        println!("{}", a.render());
        if let Some(e) = a.to_error() {
            return Err(e);
        }
    }
    if r.nonfinite_batches > 0 {
        return Err(HetGmpError::data_unattributed(
            0,
            format!(
                "{} batch(es) produced a non-finite training loss; the run diverged",
                r.nonfinite_batches
            ),
        ));
    }
    Ok(())
}

fn cmd_capacity(args: &Args) -> Result<(), HetGmpError> {
    let plan = CapacityPlan {
        num_workers: args.get_or("workers", 24),
        memory_per_worker: (args.get_or("mem-gb", 32u64)) * (1 << 30),
        dim: args.get_or("dim", 128),
        bytes_per_param: 4,
        replication_fraction: args.get_or("replication", 0.01),
        optimizer_state_factor: args.get_or("opt-factor", 1.0),
    };
    println!(
        "{} workers x {} GB, dim {}: up to {:.3e} rows = {:.3e} parameters",
        plan.num_workers,
        plan.memory_per_worker >> 30,
        plan.dim,
        plan.max_rows() as f64,
        plan.max_params() as f64
    );
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), HetGmpError> {
    let which = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| HetGmpError::usage("experiment name required"))?;
    let scale: f64 = args.get_or("scale", 0.15);
    let mut telemetry = telemetry_sink(args)?;
    if let Some(w) = telemetry.as_mut() {
        // A harness-level manifest: experiment runners vary seeds and
        // strategies internally, so seed 0 marks "multi-run log" and the
        // digest covers the harness invocation itself.
        let manifest = RunManifest::new(
            0,
            RunManifest::digest_of(&format!("experiment={which}|scale={scale}")),
            8,
            parse_flag_usize(args, "pipeline-depth")?.unwrap_or(1),
            parse_flag_usize(args, "gemm-threads")?.unwrap_or(1),
        );
        w.write_record(&manifest.to_record())?;
    }
    // Experiment runners use 8-worker topologies throughout.
    let trace = trace_collector(args, 8)?;
    let hooks = experiments::Hooks {
        tracer: trace.as_ref().map(|(t, _)| Arc::clone(t)),
        audit: audit_mode(args)?,
        pipeline_depth: parse_flag_usize(args, "pipeline-depth")?,
        gemm_threads: parse_flag_usize(args, "gemm-threads")?,
        sync_format: sync_format_flag(args)?,
        sync_error_feedback: sync_feedback_flag(args)?,
    };
    match which {
        "fig1" => println!("{}", experiments::overhead::run(scale)),
        "fig3" => {
            for r in experiments::cooccurrence::run(scale) {
                println!("{r}\n");
            }
        }
        "fig7" => println!("{}", experiments::convergence::run(scale, 3)),
        "fig8" => println!(
            "{}",
            experiments::comm_breakdown::run_instrumented(scale, telemetry.as_mut(), &hooks)
        ),
        "fig9" => {
            for r in experiments::hierarchy::run(scale) {
                println!("{r}\n");
            }
        }
        "fig10" => {
            for r in experiments::scalability::run(scale) {
                println!("{r}\n");
            }
        }
        "table2" => println!(
            "{}",
            experiments::staleness::run_instrumented(scale, 3, telemetry.as_mut(), &hooks)
        ),
        "table3" => {
            for r in experiments::partitioners::run(scale) {
                println!("{r}\n");
            }
        }
        "ablation" => {
            let (st, rep, bal) =
                experiments::ablation::run_instrumented(scale, telemetry.as_mut(), &hooks);
            println!("{st}\n\n{rep}\n\n{bal}");
        }
        "all" => {
            println!("{}", experiments::overhead::run(scale));
            for r in experiments::cooccurrence::run(scale) {
                println!("{r}\n");
            }
            for r in experiments::partitioners::run(scale) {
                println!("{r}\n");
            }
            println!(
                "{}",
                experiments::comm_breakdown::run_instrumented(scale, telemetry.as_mut(), &hooks)
            );
            println!(
                "{}",
                experiments::staleness::run_instrumented(scale, 3, telemetry.as_mut(), &hooks)
            );
            for r in experiments::hierarchy::run(scale) {
                println!("{r}\n");
            }
            for r in experiments::scalability::run(scale) {
                println!("{r}\n");
            }
        }
        other => {
            return Err(HetGmpError::usage(format!(
                "unknown experiment {other:?} (see --help)"
            )))
        }
    }
    if let Some(w) = telemetry.as_mut() {
        w.flush()?;
        println!("telemetry: {}", w.path().display());
    }
    write_trace(&trace)?;
    Ok(())
}

/// `inspect report|pipeline|diff` — post-hoc artifact analysis. Returns an
/// exit code rather than `()` because `diff` signals "regression found"
/// with exit 1 (reserving the sysexits codes for real errors).
fn cmd_inspect(args: &Args) -> Result<ExitCode, HetGmpError> {
    let mode = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| HetGmpError::usage("inspect mode required (report|pipeline|diff)"))?;
    let path = |i: usize, what: &str| -> Result<&str, HetGmpError> {
        args.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| HetGmpError::usage(format!("inspect {mode} requires {what}")))
    };
    match mode {
        "report" => {
            let artifact = Artifact::load(path(2, "a telemetry FILE.jsonl")?)?;
            print!("{}", render_report(&artifact, args.has("wall"))?);
            Ok(ExitCode::SUCCESS)
        }
        "pipeline" => {
            let artifact = Artifact::load(path(2, "a FILE.trace.json")?)?;
            print!("{}", render_gantt(&artifact)?);
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let baseline = Artifact::load(path(2, "BASELINE and CANDIDATE files")?)?;
            let candidate = Artifact::load(path(3, "BASELINE and CANDIDATE files")?)?;
            let opts = match args.get("threshold") {
                None => DiffOptions::default(),
                Some(v) => DiffOptions {
                    threshold_pct: v.parse().map_err(|_| {
                        HetGmpError::usage(format!(
                            "--threshold requires a percentage, got {v:?}"
                        ))
                    })?,
                },
            };
            let outcome = diff_artifacts(&baseline, &candidate, &opts)?;
            if let Some(warning) = &outcome.manifest_warning {
                eprintln!("{warning}");
            }
            print!("{}", outcome.report);
            Ok(if outcome.regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        other => Err(HetGmpError::usage(format!(
            "unknown inspect mode {other:?} (report|pipeline|diff)"
        ))),
    }
}
