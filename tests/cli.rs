//! End-to-end tests of the `het-gmp` CLI binary.

use std::process::Command;

fn het_gmp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_het-gmp"))
}

#[test]
fn help_prints_usage() {
    let out = het_gmp().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: het-gmp"));
    assert!(text.contains("experiment"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = het_gmp().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn capacity_reproduces_paper_claim() {
    let out = het_gmp()
        .args(["capacity", "--workers", "24", "--mem-gb", "32", "--dim", "128"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // ~1.4e11 parameters.
    assert!(text.contains("e11 parameters"), "{text}");
}

#[test]
fn gen_partition_train_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hetgmp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("tiny.svm");
    let path = file.to_str().unwrap();

    let out = het_gmp()
        .args(["gen", "--preset", "tiny", "--out", path])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(file.exists());

    let out = het_gmp()
        .args([
            "partition", "--in", path, "--fields", "4", "--workers", "4", "--algo", "hybrid",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("remote fetches/epoch"), "{text}");

    let out = het_gmp()
        .args([
            "train", "--in", path, "--fields", "4", "--workers", "2", "--epochs", "1",
            "--system", "het-gmp",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final AUC"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_rejects_unknown_system() {
    let out = het_gmp()
        .args(["train", "--preset", "tiny", "--system", "sparkle"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown system"));
}
