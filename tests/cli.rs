//! End-to-end tests of the `het-gmp` CLI binary.

use std::process::Command;

fn het_gmp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_het-gmp"))
}

#[test]
fn help_prints_usage() {
    let out = het_gmp().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: het-gmp"));
    assert!(text.contains("experiment"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = het_gmp().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn capacity_reproduces_paper_claim() {
    let out = het_gmp()
        .args(["capacity", "--workers", "24", "--mem-gb", "32", "--dim", "128"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // ~1.4e11 parameters.
    assert!(text.contains("e11 parameters"), "{text}");
}

#[test]
fn gen_partition_train_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hetgmp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("tiny.svm");
    let path = file.to_str().unwrap();

    let out = het_gmp()
        .args(["gen", "--preset", "tiny", "--out", path])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(file.exists());

    let out = het_gmp()
        .args([
            "partition", "--in", path, "--fields", "4", "--workers", "4", "--algo", "hybrid",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("remote fetches/epoch"), "{text}");

    let out = het_gmp()
        .args([
            "train", "--in", path, "--fields", "4", "--workers", "2", "--epochs", "1",
            "--system", "het-gmp",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final AUC"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_rejects_unknown_system() {
    let out = het_gmp()
        .args(["train", "--preset", "tiny", "--system", "sparkle"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown system"));
}

#[test]
fn train_telemetry_flag_writes_parseable_jsonl() {
    let dir = std::env::temp_dir().join(format!("hetgmp-cli-tele-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tele = dir.join("out.jsonl");

    let out = het_gmp()
        .args([
            "train", "--preset", "tiny", "--workers", "2", "--epochs", "1",
            "--telemetry", tele.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&tele).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // The run manifest, one record per epoch evaluation, the final snapshot.
    assert!(lines.len() >= 3, "{text}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count(), "{line}");
    }
    assert!(lines[0].contains(r#""event":"manifest""#), "{}", lines[0]);
    assert!(lines[0].contains(r#""config_digest":"#), "{}", lines[0]);
    assert!(lines[1].contains(r#""event":"epoch""#), "{}", lines[1]);
    let last = lines.last().unwrap();
    assert!(last.contains(r#""event":"final""#), "{last}");
    assert!(last.contains(r#""traffic.bytes.embed_data":"#), "{last}");
    assert!(last.contains(r#""traffic.bytes.allreduce":"#), "{last}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exit_codes_follow_sysexits() {
    // Usage error -> 2.
    let out = het_gmp()
        .args(["train", "--preset", "tiny", "--system", "sparkle"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");

    // Malformed data -> 65, with the offending file and line reported.
    let dir = std::env::temp_dir().join(format!("hetgmp-cli-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.svm");
    std::fs::write(&bad, "not-a-label 1:1\n").unwrap();
    let out = het_gmp()
        .args(["train", "--in", bad.to_str().unwrap(), "--fields", "2"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(65), "data errors exit 65");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad.svm") && err.contains("line 1"), "{err}");

    // I/O error (missing file) -> 74.
    let out = het_gmp()
        .args(["train", "--in", "/nonexistent/x.svm", "--fields", "2"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(74), "I/O errors exit 74");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partition_multilevel_via_unified_interface() {
    let out = het_gmp()
        .args(["partition", "--preset", "tiny", "--workers", "4", "--algo", "multilevel"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("multilevel"), "{text}");
}
