//! Consistency-model integration tests: the bounded-asynchrony guarantees
//! of §5.3/§5.4, exercised across crates with real concurrency.

use std::sync::Arc;

use het_gmp::embedding::{ShardedTable, SparseOpt, StalenessBound, WorkerEmbedding};
use het_gmp::partition::Partition;

/// Builds a 2-worker layout where embedding 0 is primary on worker 1 with a
/// secondary on worker 0.
fn layout() -> Partition {
    let mut p = Partition::new(2, vec![0, 1], vec![1, 0, 0, 1]);
    p.add_replica(0, 0);
    p
}

#[test]
fn s_zero_reads_are_fully_synchronous() {
    // Under s = 0 every secondary read returns exactly the primary value,
    // no matter how many foreign updates happened.
    let table = ShardedTable::new(4, 4, 0.0, 1);
    let part = layout();
    let freq = vec![100, 1, 1, 1];
    let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(0));
    let samples: Vec<&[u32]> = vec![&[0]];
    let mut out = vec![0.0f32; 4];
    let opt = SparseOpt::sgd(0.1);
    for step in 1..=20u32 {
        table.apply_grad(0, &[1.0, 0.0, 0.0, 0.0], &opt);
        w0.read_batch(&samples, &mut out);
        let mut primary = vec![0.0f32; 4];
        table.read_row(0, &mut primary);
        assert_eq!(out, primary, "diverged at step {step}");
    }
}

#[test]
fn bounded_staleness_error_is_bounded() {
    // With s = 5 and SGD, the secondary's value can lag the primary by at
    // most s foreign updates — the empirical core of Theorem 1's bounded-
    // delay assumption.
    let table = ShardedTable::new(4, 1, 0.0, 1);
    let part = layout();
    let freq = vec![100, 1, 1, 1];
    let s = 5u64;
    let lr = 0.1f32;
    let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(s));
    let samples: Vec<&[u32]> = vec![&[0]];
    let mut out = vec![0.0f32];
    let opt = SparseOpt::sgd(lr);
    for _ in 0..100 {
        table.apply_grad(0, &[1.0], &opt); // foreign update: −0.1 each
        w0.read_batch(&samples, &mut out);
        let mut primary = vec![0.0f32];
        table.read_row(0, &mut primary);
        let gap = (out[0] - primary[0]).abs();
        assert!(
            gap <= (s as f32 + 1.0) * lr + 1e-5,
            "staleness bound violated: gap {gap}"
        );
    }
}

#[test]
fn unbounded_staleness_drifts_arbitrarily() {
    let table = ShardedTable::new(4, 1, 0.0, 1);
    let part = layout();
    let freq = vec![100, 1, 1, 1];
    let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Infinite);
    let samples: Vec<&[u32]> = vec![&[0]];
    let mut out = vec![0.0f32];
    let opt = SparseOpt::sgd(0.1);
    for _ in 0..200 {
        table.apply_grad(0, &[1.0], &opt);
    }
    w0.read_batch(&samples, &mut out);
    let mut primary = vec![0.0f32];
    table.read_row(0, &mut primary);
    assert!(
        (out[0] - primary[0]).abs() > 10.0,
        "ASP replica unexpectedly fresh"
    );
}

#[test]
fn concurrent_workers_converge_to_consistent_table() {
    // 4 worker threads hammer a shared table through the protocol; at the
    // end, after flush + sync, every replica agrees with its primary.
    let rows = 64usize;
    let dim = 4usize;
    let table = Arc::new(ShardedTable::new(rows, dim, 0.0, 3));
    let mut part = Partition::new(4, (0..16).map(|i| i % 4).collect(), (0..rows as u32).map(|e| e % 4).collect());
    for e in 0..8u32 {
        for k in 0..4u32 {
            part.add_replica(e, k);
        }
    }
    let part = Arc::new(part);
    let freq: Arc<Vec<u64>> = Arc::new((0..rows).map(|i| (rows - i) as u64).collect());
    let opt = SparseOpt::sgd(0.01);

    std::thread::scope(|scope| {
        for w in 0..4u32 {
            let table = Arc::clone(&table);
            let part = Arc::clone(&part);
            let freq = Arc::clone(&freq);
            scope.spawn(move || {
                let mut we =
                    WorkerEmbedding::new(w, &table, &part, &freq, StalenessBound::Bounded(8));
                let ids: Vec<u32> = (0..rows as u32).collect();
                let mut out = vec![0.0f32; rows * dim];
                let grads = vec![0.5f32; rows * dim];
                for _ in 0..50 {
                    let samples: Vec<&[u32]> = vec![&ids];
                    we.read_batch(&samples, &mut out);
                    we.apply_gradients(&samples, &grads, &opt);
                }
                we.flush_all(&opt);
            });
        }
    });

    // All 4 workers × 50 iterations × 0.5 gradient at lr 0.01 — primaries
    // must reflect every update exactly (flushes merge, nothing lost).
    let mut row = vec![0.0f32; dim];
    for e in 0..rows as u32 {
        table.read_row(e, &mut row);
        let expected = -(4.0 * 50.0 * 0.5 * 0.01);
        assert!(
            (row[0] - expected).abs() < 1e-3,
            "row {e}: {} vs {expected}",
            row[0]
        );
    }
}

#[test]
fn clock_normalization_uses_frequencies() {
    // A hot and a cold embedding co-accessed by one sample: the inter check
    // normalises by frequency, so a hot row's high raw clock alone must not
    // trigger a sync of the cold row.
    let table = ShardedTable::new(4, 1, 0.0, 1);
    let mut part = Partition::new(2, vec![0, 1], vec![1, 1, 1, 1]);
    part.add_replica(0, 0); // hot secondary
    part.add_replica(1, 0); // cold secondary
    let freq = vec![1000, 10, 1, 1];
    let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(4));
    let opt = SparseOpt::sgd(0.01);
    // 30 foreign updates to the hot row → intra gap 30 > 4 → hot syncs.
    for _ in 0..30 {
        table.apply_grad(0, &[1.0], &opt);
    }
    let samples: Vec<&[u32]> = vec![&[0, 1]];
    let mut out = vec![0.0f32; 2];
    let r = w0.read_batch(&samples, &mut out);
    assert_eq!(r.intra_syncs, 1);
    // After the hot sync its clock is 30; normalised against the cold row:
    // |30·(10/1000) − 0| = 0.3 ≤ 4 → no inter sync.
    assert_eq!(r.inter_syncs, 0, "{r:?}");
}
