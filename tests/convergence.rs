//! Empirical validation of Theorem 1 (§5.4): bounded-staleness training is
//! an iterative-convergent process — the objective decreases sufficiently,
//! iterate movement diminishes, and bounded-`s` runs converge to the same
//! quality as fully-synchronous runs.

use het_gmp::cluster::Topology;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};

fn dataset() -> het_gmp::data::CtrDataset {
    let mut spec = DatasetSpec::avazu_like(0.06);
    spec.cluster_affinity = 0.9;
    generate(&spec)
}

fn run(s: u64, epochs: usize) -> het_gmp::core::trainer::TrainResult {
    let data = dataset();
    Trainer::new(
        &data,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(s),
        TrainerConfig {
            epochs,
            dim: 16,
            batch_size: 256,
            hidden: vec![32, 16],
            ..Default::default()
        },
    )
    .run()
}

#[test]
fn objective_decreases_sufficiently() {
    // Assumption (3) of Theorem 1: the objective decreases for large t.
    let r = run(100, 6);
    let losses: Vec<f64> = r.curve.iter().map(|p| p.train_loss).collect();
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "loss never decreased: {losses:?}"
    );
    // Monotone up to small noise: every epoch is within 2% of the best so
    // far (allows stochastic wiggle without allowing divergence).
    let mut best = f64::INFINITY;
    for (i, &l) in losses.iter().enumerate() {
        assert!(l <= best * 1.02, "epoch {i}: loss {l} regressed past {best}");
        best = best.min(l);
    }
}

#[test]
fn iterate_movement_diminishes() {
    // The summability in Eq. (7) implies per-epoch improvements shrink:
    // compare the loss drop of the first half vs the second half of
    // training.
    let r = run(100, 8);
    let losses: Vec<f64> = r.curve.iter().map(|p| p.train_loss).collect();
    let first_half = losses[0] - losses[losses.len() / 2];
    let second_half = losses[losses.len() / 2] - losses[losses.len() - 1];
    assert!(
        second_half < first_half,
        "no diminishing returns: first {first_half} vs second {second_half}"
    );
}

#[test]
fn bounded_staleness_reaches_synchronous_quality() {
    // Theorem 1's conclusion: {x(t)} under bounded delay converges to a
    // critical point of the same objective — empirically, final AUC under
    // s = 100 matches s = 0 within a point.
    let sync = run(0, 5);
    let stale = run(100, 5);
    assert!(
        (sync.final_auc - stale.final_auc).abs() < 0.015,
        "s=0 {:.4} vs s=100 {:.4}",
        sync.final_auc,
        stale.final_auc
    );
    assert!(sync.final_auc > 0.6, "sync run failed to learn");
}

#[test]
fn convergence_rate_is_sublinear() {
    // O(1/t) rate (Eq. 9): the excess loss decays at least as fast as c/t
    // on a log-log fit (slope ≤ −0.4, loose to absorb stochastic noise).
    let r = run(10, 8);
    let losses: Vec<f64> = r.curve.iter().map(|p| p.train_loss).collect();
    let floor = losses.iter().cloned().fold(f64::INFINITY, f64::min) - 1e-3;
    let points: Vec<(f64, f64)> = losses
        .iter()
        .enumerate()
        .filter(|(_, &l)| l - floor > 1e-6)
        .map(|(t, &l)| (((t + 1) as f64).ln(), (l - floor).ln()))
        .collect();
    assert!(points.len() >= 4, "not enough excess-loss points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    assert!(slope < -0.4, "excess-loss decay slope {slope} too flat");
}
