//! Empirical validation of Theorem 1 (§5.4): bounded-staleness training is
//! an iterative-convergent process — the objective decreases sufficiently,
//! iterate movement diminishes, and bounded-`s` runs converge to the same
//! quality as fully-synchronous runs.

use het_gmp::cluster::Topology;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};
use het_gmp::telemetry::AuditMode;

fn dataset() -> het_gmp::data::CtrDataset {
    let mut spec = DatasetSpec::avazu_like(0.06);
    spec.cluster_affinity = 0.9;
    generate(&spec)
}

fn run(s: u64, epochs: usize) -> het_gmp::core::trainer::TrainResult {
    let data = dataset();
    Trainer::new(
        &data,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(s),
        TrainerConfig {
            epochs,
            dim: 16,
            batch_size: 256,
            hidden: vec![32, 16],
            ..Default::default()
        },
    )
    .run()
}

#[test]
fn objective_decreases_sufficiently() {
    // Assumption (3) of Theorem 1: the objective decreases for large t.
    let r = run(100, 6);
    let losses: Vec<f64> = r.curve.iter().map(|p| p.train_loss).collect();
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "loss never decreased: {losses:?}"
    );
    // Monotone up to small noise: every epoch is within 2% of the best so
    // far (allows stochastic wiggle without allowing divergence).
    let mut best = f64::INFINITY;
    for (i, &l) in losses.iter().enumerate() {
        assert!(l <= best * 1.02, "epoch {i}: loss {l} regressed past {best}");
        best = best.min(l);
    }
}

#[test]
fn iterate_movement_diminishes() {
    // The summability in Eq. (7) implies per-epoch improvements shrink:
    // compare the loss drop of the first half vs the second half of
    // training.
    let r = run(100, 8);
    let losses: Vec<f64> = r.curve.iter().map(|p| p.train_loss).collect();
    let first_half = losses[0] - losses[losses.len() / 2];
    let second_half = losses[losses.len() / 2] - losses[losses.len() - 1];
    assert!(
        second_half < first_half,
        "no diminishing returns: first {first_half} vs second {second_half}"
    );
}

#[test]
fn bounded_staleness_reaches_synchronous_quality() {
    // Theorem 1's conclusion: {x(t)} under bounded delay converges to a
    // critical point of the same objective — empirically, final AUC under
    // s = 100 matches s = 0 within a point.
    let sync = run(0, 5);
    let stale = run(100, 5);
    assert!(
        (sync.final_auc - stale.final_auc).abs() < 0.015,
        "s=0 {:.4} vs s=100 {:.4}",
        sync.final_auc,
        stale.final_auc
    );
    assert!(sync.final_auc > 0.6, "sync run failed to learn");
}

#[test]
fn convergence_rate_is_sublinear() {
    // O(1/t) rate (Eq. 9): the excess loss decays at least as fast as c/t
    // on a log-log fit (slope ≤ −0.4, loose to absorb stochastic noise).
    let r = run(10, 8);
    let losses: Vec<f64> = r.curve.iter().map(|p| p.train_loss).collect();
    let floor = losses.iter().cloned().fold(f64::INFINITY, f64::min) - 1e-3;
    let points: Vec<(f64, f64)> = losses
        .iter()
        .enumerate()
        .filter(|(_, &l)| l - floor > 1e-6)
        .map(|(t, &l)| (((t + 1) as f64).ln(), (l - floor).ln()))
        .collect();
    assert!(points.len() >= 4, "not enough excess-loss points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    assert!(slope < -0.4, "excess-loss decay slope {slope} too flat");
}

// ---- Golden seed-sweep regression -------------------------------------

/// One pinned run: strategy × seed → exact final numbers.
struct Golden {
    strategy: &'static str,
    seed: u64,
    final_auc: f64,
    train_loss: f64,
    samples: u64,
    intra_reads: u64,
    inter_checks: u64,
}

/// Pinned by running the suite once and copying the printed rows; see
/// `seed_sweep_matches_goldens` for the regeneration procedure. The runs
/// are deterministic by construction (phase fences + rank-ordered
/// write-backs), so these are equality pins, not statistical checks.
#[rustfmt::skip]
const GOLDENS: &[Golden] = &[
    Golden { strategy: "bsp", seed: 42, final_auc: 0.6422222222222222, train_loss: 0.5607099285714285, samples: 3584, intra_reads: 112, inter_checks: 279 },
    Golden { strategy: "bsp", seed: 1337, final_auc: 0.6518055555555555, train_loss: 0.5622487142857143, samples: 3584, intra_reads: 112, inter_checks: 279 },
    Golden { strategy: "bsp", seed: 2026, final_auc: 0.6430555555555556, train_loss: 0.5601504285714286, samples: 3584, intra_reads: 112, inter_checks: 279 },
    Golden { strategy: "ssp", seed: 42, final_auc: 0.6445833333333333, train_loss: 0.5611476428571429, samples: 3584, intra_reads: 112, inter_checks: 279 },
    Golden { strategy: "ssp", seed: 1337, final_auc: 0.6526388888888889, train_loss: 0.5621735, samples: 3584, intra_reads: 112, inter_checks: 279 },
    Golden { strategy: "ssp", seed: 2026, final_auc: 0.6495833333333333, train_loss: 0.5605652857142858, samples: 3584, intra_reads: 112, inter_checks: 279 },
    Golden { strategy: "asp", seed: 42, final_auc: 0.6445833333333333, train_loss: 0.5611476428571429, samples: 3584, intra_reads: 112, inter_checks: 0 },
    Golden { strategy: "asp", seed: 1337, final_auc: 0.6526388888888889, train_loss: 0.5621735, samples: 3584, intra_reads: 112, inter_checks: 0 },
    Golden { strategy: "asp", seed: 2026, final_auc: 0.6495833333333333, train_loss: 0.5605652857142858, samples: 3584, intra_reads: 112, inter_checks: 0 },
];

fn golden_run(strategy: &str, seed: u64) -> het_gmp::core::trainer::TrainResult {
    golden_run_with(strategy, seed, None)
}

fn golden_run_with(
    strategy: &str,
    seed: u64,
    sync_format: Option<het_gmp::comms::SyncFormat>,
) -> het_gmp::core::trainer::TrainResult {
    let mut spec = DatasetSpec::avazu_like(0.03);
    spec.cluster_affinity = 0.9;
    let data = generate(&spec);
    let strat = match strategy {
        "bsp" => StrategyConfig::het_gmp(0),
        "ssp" => StrategyConfig::het_gmp(100),
        "asp" => StrategyConfig::het_gmp_asp(),
        other => panic!("unknown strategy {other}"),
    };
    Trainer::new(
        &data,
        Topology::pcie_island(2),
        strat,
        TrainerConfig {
            epochs: 2,
            dim: 8,
            batch_size: 128,
            hidden: vec![16],
            seed,
            ..Default::default()
        },
    )
    .with_audit(AuditMode::Count)
    .with_sync_format(sync_format, None)
    .run()
}

/// `--sync-format f32` is the identity transport: selecting it explicitly
/// must reproduce the default-path goldens to the last bit — any drift
/// means the wire encoding touched values it promised to pass through.
#[test]
fn explicit_f32_sync_format_matches_goldens() {
    for strategy in ["bsp", "ssp", "asp"] {
        let g = GOLDENS
            .iter()
            .find(|g| g.strategy == strategy && g.seed == 42)
            .expect("golden row");
        let r = golden_run_with(strategy, 42, Some(het_gmp::comms::SyncFormat::F32));
        let loss = r.curve.last().expect("curve").train_loss;
        assert_eq!(r.final_auc, g.final_auc, "{strategy}: explicit f32 moved the AUC");
        assert_eq!(loss, g.train_loss, "{strategy}: explicit f32 moved the loss");
        assert_eq!(r.samples_processed, g.samples, "{strategy}: sample count moved");
    }
}

/// Golden regression over 3 seeds × {BSP (s=0), SSP (s=100), ASP}: final
/// AUC, mean train loss, sample counts, and the audit's check counts must
/// reproduce exactly. Any drift means the training math changed — the
/// batched hot path (and every future optimisation) must keep these bits.
///
/// To regenerate after an *intentional* math change: run with
/// `--nocapture`, copy the printed `Golden { .. }` rows into `GOLDENS`.
#[test]
fn seed_sweep_matches_goldens() {
    let mut rows = String::new();
    let mut failures = Vec::new();
    for strategy in ["bsp", "ssp", "asp"] {
        for seed in [42u64, 1337, 2026] {
            let r = golden_run(strategy, seed);
            let audit = r.audit.expect("audit enabled");
            let loss = r.curve.last().expect("curve").train_loss;
            // The protocol *never* serves a violating read, under any
            // strategy — ASP has an infinite bound, bounded runs sync.
            assert_eq!(
                audit.total_violations(),
                0,
                "{strategy}/{seed}: {}",
                audit.render()
            );
            rows.push_str(&format!(
                "Golden {{ strategy: \"{strategy}\", seed: {seed}, final_auc: \
                 {:?}, train_loss: {:?}, samples: {}, intra_reads: {}, \
                 inter_checks: {} }},\n",
                r.final_auc, loss, r.samples_processed, audit.intra_reads, audit.inter_checks,
            ));
            let Some(g) = GOLDENS
                .iter()
                .find(|g| g.strategy == strategy && g.seed == seed)
            else {
                failures.push(format!("{strategy}/{seed}: no golden row"));
                continue;
            };
            if (r.final_auc - g.final_auc).abs() > 1e-9 {
                failures.push(format!(
                    "{strategy}/{seed}: auc {:?} != {:?}",
                    r.final_auc, g.final_auc
                ));
            }
            if (loss - g.train_loss).abs() > 1e-9 {
                failures.push(format!(
                    "{strategy}/{seed}: loss {:?} != {:?}",
                    loss, g.train_loss
                ));
            }
            if r.samples_processed != g.samples {
                failures.push(format!(
                    "{strategy}/{seed}: samples {} != {}",
                    r.samples_processed, g.samples
                ));
            }
            if (audit.intra_reads, audit.inter_checks) != (g.intra_reads, g.inter_checks) {
                failures.push(format!(
                    "{strategy}/{seed}: audit ({}, {}) != ({}, {})",
                    audit.intra_reads, audit.inter_checks, g.intra_reads, g.inter_checks
                ));
            }
        }
    }
    println!("golden rows:\n{rows}");
    assert!(
        failures.is_empty(),
        "golden drift:\n{}\nactual rows (paste into GOLDENS after an \
         intentional math change):\n{rows}",
        failures.join("\n")
    );
}
