//! End-to-end integration: dataset → bigraph → partition → distributed
//! training → experiment reports, across every public crate.

use het_gmp::bigraph::DegreeStats;
use het_gmp::cluster::Topology;
use het_gmp::core::models::ModelKind;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};
use het_gmp::partition::{HybridConfig, HybridPartitioner, PartitionMetrics};

fn dataset() -> het_gmp::data::CtrDataset {
    let mut spec = DatasetSpec::avazu_like(0.04);
    spec.cluster_affinity = 0.9;
    generate(&spec)
}

#[test]
fn pipeline_dataset_to_partition_to_training() {
    let data = dataset();
    let graph = data.to_bigraph();

    // The generator plants the paper's two graph properties.
    let stats = DegreeStats::embeddings(&graph);
    assert!(stats.gini > 0.5, "skewness missing: gini {}", stats.gini);

    // Algorithm 1 produces a valid partition that beats random.
    let (part, rounds) = HybridPartitioner::new(HybridConfig::default()).partition_rounds(&graph, 8);
    assert!(part.validate(&graph).is_ok());
    assert!(rounds.len() == 3);
    let ours = PartitionMetrics::compute(&graph, &part, None);
    let random = PartitionMetrics::compute(
        &graph,
        &het_gmp::partition::random_partition(&graph, 8, 1),
        None,
    );
    assert!(ours.remote_fetches < random.remote_fetches);

    // Training on that partition learns (AUC above chance) and accounts
    // communication consistently with the partition metrics.
    let trainer = Trainer::new(
        &data,
        Topology::pcie_island(8),
        StrategyConfig::het_gmp(100),
        TrainerConfig {
            epochs: 3,
            ..Default::default()
        },
    );
    let result = trainer.run();
    assert!(result.final_auc > 0.58, "AUC {}", result.final_auc);
    assert!(result.traffic_bytes[0] > 0, "no embedding traffic recorded");
    assert!(result.breakdown.compute > 0.0);
    assert!(result.sim_time > 0.0);
}

#[test]
fn all_five_systems_complete_and_order_sanely() {
    let data = dataset();
    let topo = Topology::pcie_island(4);
    let cfg = TrainerConfig {
        epochs: 2,
        dim: 32,
        batch_size: 128,
        ..Default::default()
    };
    let mut results = Vec::new();
    for strat in [
        StrategyConfig::tf_ps(),
        StrategyConfig::parallax(),
        StrategyConfig::hugectr(),
        StrategyConfig::het_mp(),
        StrategyConfig::het_gmp(100),
    ] {
        let r = Trainer::new(&data, topo.clone(), strat, cfg.clone()).run();
        results.push(r);
    }
    // GPU systems are faster than CPU-PS systems (paper Figure 7's gap).
    let time = |name: &str| {
        results
            .iter()
            .find(|r| r.strategy.starts_with(name))
            .map(|r| r.sim_time)
            .expect("system ran")
    };
    assert!(time("HET-GMP") < time("TF-PS"));
    assert!(time("HugeCTR") < time("Parallax"));
    // Every system actually learned *something* (AUC above coin flip).
    for r in &results {
        assert!(r.final_auc > 0.52, "{} AUC {}", r.strategy, r.final_auc);
    }
}

#[test]
fn dcn_and_wdl_both_train_distributed() {
    let data = dataset();
    for model in [ModelKind::Wdl, ModelKind::Dcn] {
        let r = Trainer::new(
            &data,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp(10),
            TrainerConfig {
                model,
                epochs: 2,
                ..Default::default()
            },
        )
        .run();
        assert!(
            r.final_auc > 0.55,
            "{} AUC {}",
            model.name(),
            r.final_auc
        );
    }
}

#[test]
fn experiment_reports_render() {
    // Smoke-run each experiment at minimal scale and verify the rendering
    // contains its table/figure header (the bench binaries rely on this).
    let fig3 = het_gmp::core::experiments::cooccurrence::run(0.02);
    assert!(fig3[0].to_string().contains("Figure 3"));
    let t3 = het_gmp::core::experiments::partitioners::run(0.02);
    assert!(t3[0].to_string().contains("Table 3"));
    let fig1 = het_gmp::core::experiments::overhead::run(0.02);
    assert!(fig1.to_string().contains("Figure 1"));
}
