//! Degenerate-input and failure-injection tests: the system must stay
//! correct on pathological datasets, extreme partitions, skewed shards,
//! and under injected worker faults (crash/stall/link degradation).

use std::sync::Arc;

use het_gmp::bigraph::Bigraph;
use het_gmp::cluster::{FaultSchedule, Topology};
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, CtrDataset, DatasetSpec};
use het_gmp::partition::{
    random_partition, HybridConfig, HybridPartitioner, PartitionMetrics, ReplicationBudget,
};
use het_gmp::telemetry::AuditMode;

fn tiny_config() -> TrainerConfig {
    TrainerConfig {
        epochs: 1,
        batch_size: 16,
        dim: 4,
        hidden: vec![8],
        max_eval_samples: 64,
        ..Default::default()
    }
}

#[test]
fn single_worker_training_works() {
    let data = generate(&DatasetSpec::tiny());
    let r = Trainer::new(
        &data,
        Topology::cluster_b_scaled(1),
        StrategyConfig::het_gmp(100),
        tiny_config(),
    )
    .run();
    assert!(r.final_auc > 0.4);
    assert_eq!(r.traffic_bytes[0], 0, "1 worker must be all-local");
}

#[test]
fn single_hot_feature_dataset() {
    // Every sample uses the same feature in field 0 — an extreme hot spot.
    let n = 64;
    let data = CtrDataset {
        name: "hotspot".into(),
        num_fields: 2,
        num_features: 8,
        features: (0..n).flat_map(|i| vec![0u32, 1 + (i % 7) as u32]).collect(),
        labels: (0..n).map(|i| (i % 2) as f32).collect(),
        clusters: vec![0; n],
    };
    let r = Trainer::new(
        &data,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(10),
        tiny_config(),
    )
    .run();
    assert!(r.sim_time > 0.0);
    // The hot feature gets replicated widely by vertex-cut.
    let graph = data.to_bigraph();
    let (part, _) = HybridPartitioner::new(HybridConfig {
        replication: Some(ReplicationBudget::PerPartitionSlots(1)),
        ..Default::default()
    })
    .partition_rounds(&graph, 4);
    assert!(part.replica_count(0) >= 3, "hot feature not replicated");
}

#[test]
fn heavily_skewed_shards_do_not_deadlock() {
    // A partition where one worker owns almost all samples: the iteration
    // schedule wraps the others; every collective must still complete.
    let data = generate(&DatasetSpec::tiny());
    let graph = data.to_bigraph();
    let mut part = random_partition(&graph, 4, 1);
    for s in 0..(graph.num_samples() as u32 * 3 / 4) {
        part.move_sample(s, 0);
    }
    let m = PartitionMetrics::compute(&graph, &part, None);
    assert!(m.sample_imbalance() > 2.0, "setup not skewed enough");
    // Training still proceeds (the trainer builds its own partition, so this
    // exercise runs the skew through the trainer via the random policy with
    // a skew-inducing seed instead).
    let r = Trainer::new(
        &data,
        Topology::pcie_island(4),
        StrategyConfig::het_mp(),
        tiny_config(),
    )
    .run();
    assert!(r.samples_processed > 0);
}

#[test]
fn zero_replication_budget_matches_pure_1d() {
    let data = generate(&DatasetSpec::tiny());
    let graph = data.to_bigraph();
    let (with_zero, _) = HybridPartitioner::new(HybridConfig {
        replication: Some(ReplicationBudget::FractionOfEmbeddings(0.0)),
        ..Default::default()
    })
    .partition_rounds(&graph, 4);
    let (without, _) = HybridPartitioner::new(HybridConfig {
        replication: None,
        ..Default::default()
    })
    .partition_rounds(&graph, 4);
    assert_eq!(with_zero.replication_factor(), 1.0);
    for e in 0..graph.num_embeddings() as u32 {
        assert_eq!(with_zero.primary_of(e), without.primary_of(e));
    }
}

#[test]
fn more_workers_than_meaningful_shards() {
    // 32 workers for a 256-sample dataset: shards of ~8 samples.
    let data = generate(&DatasetSpec::tiny());
    let r = Trainer::new(
        &data,
        Topology::cluster_b_scaled(32),
        StrategyConfig::het_mp(),
        tiny_config(),
    )
    .run();
    assert!(r.samples_processed > 0);
    assert!(r.sim_time > 0.0);
}

#[test]
fn unaccessed_embeddings_are_harmless() {
    // A vocabulary far larger than the accessed set.
    let rows: Vec<Vec<u32>> = (0..64).map(|i| vec![i % 4, 4 + i % 3]).collect();
    let graph = Bigraph::from_samples(10_000, &rows);
    let (part, _) = HybridPartitioner::new(HybridConfig::default()).partition_rounds(&graph, 4);
    assert!(part.validate(&graph).is_ok());
    let m = PartitionMetrics::compute(&graph, &part, None);
    // Unaccessed embeddings spread across partitions by the balance term.
    let primaries = m.primaries_per_partition.clone();
    let max = *primaries.iter().max().unwrap();
    let min = *primaries.iter().min().unwrap();
    assert!(max - min < 10_000 / 2, "degenerate spread: {primaries:?}");
}

#[test]
fn label_constant_dataset_does_not_crash() {
    // All-positive labels: AUC is degenerate (0.5 by convention) but the
    // pipeline must survive.
    let n = 64;
    let data = CtrDataset {
        name: "all-clicks".into(),
        num_fields: 2,
        num_features: 16,
        features: (0..n).flat_map(|i| vec![(i % 8) as u32, 8 + (i % 8) as u32]).collect(),
        labels: vec![1.0; n],
        clusters: vec![0; n],
    };
    let r = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(10),
        tiny_config(),
    )
    .run();
    assert!((r.final_auc - 0.5).abs() < 1e-9);
}

// ---- Injected faults (crash / stall / degradation) -------------------------

/// A config small enough to run many faulted variants, but with enough
/// epochs that a crash early in the run leaves time to recover and learn.
fn fault_config() -> TrainerConfig {
    TrainerConfig {
        epochs: 2,
        batch_size: 16,
        dim: 4,
        hidden: vec![8],
        max_eval_samples: 64,
        ..Default::default()
    }
}

#[test]
fn crash_recovery_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("hetgmp-it-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = generate(&DatasetSpec::tiny());
    // Baseline: same seed, no faults, no checkpointing overhead.
    let baseline = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(0),
        fault_config(),
    )
    .run();
    // Faulted: worker 1 crashes just after training starts; it restores
    // from the in-memory image, replays, and rejoins. The final quality
    // must match the undisturbed run within the acceptance tolerance.
    let faults = Arc::new(FaultSchedule::parse("crash@1:0.000001", 2, 7).unwrap());
    let faulted = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(0),
        TrainerConfig {
            checkpoint_every: 1,
            checkpoint_dir: Some(dir.clone()),
            ..fault_config()
        },
    )
    .with_audit(AuditMode::Strict)
    .with_faults(faults)
    .run();
    let audit = faulted.audit.expect("audit enabled");
    assert_eq!(audit.total_violations(), 0, "{}", audit.render());
    assert_eq!(faulted.curve.len(), 2, "faulted run did not complete");
    assert_eq!(faulted.telemetry.counter("fault.crashes"), 1);
    assert!(faulted.breakdown.fault > 0.0, "no recovery time charged");
    assert!(
        (faulted.final_auc - baseline.final_auc).abs() < 0.05,
        "crash recovery changed quality: {} vs {}",
        faulted.final_auc,
        baseline.final_auc
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_run_is_deterministic_under_bsp() {
    // Checkpoint after epoch 1, then resume twice: both resumed runs and
    // the uninterrupted run must land on the same final AUC (the epoch
    // barrier plus deterministic collectives make epoch 2 replayable).
    let dir = std::env::temp_dir().join(format!("hetgmp-it-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = generate(&DatasetSpec::tiny());
    let full = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(0),
        TrainerConfig {
            checkpoint_every: 1,
            checkpoint_dir: Some(dir.clone()),
            ..fault_config()
        },
    )
    .run();
    let resume = || {
        Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(0),
            TrainerConfig {
                resume_from: Some(dir.join("ckpt-epoch-1.hgmr")),
                ..fault_config()
            },
        )
        .run()
    };
    let a = resume();
    let b = resume();
    assert_eq!(a.curve.len(), 1);
    assert_eq!(a.curve[0].epoch, 2);
    assert!((a.final_auc - full.final_auc).abs() < 0.01, "{} vs {}", a.final_auc, full.final_auc);
    assert!(
        (a.final_auc - b.final_auc).abs() < 1e-12,
        "two identical resumes diverged: {} vs {}",
        a.final_auc,
        b.final_auc
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stall_and_degradation_hold_under_strict_audit() {
    // A stalled worker plus a degraded link stretch the simulated clock but
    // must not break the staleness protocol, even at s = 0.
    let data = generate(&DatasetSpec::tiny());
    let faults = Arc::new(
        FaultSchedule::parse("stall@0:0.0:0.004; degrade@0-1:0.0:0.05:8", 2, 42).unwrap(),
    );
    let clean = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(0),
        fault_config(),
    )
    .run();
    let r = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(0),
        fault_config(),
    )
    .with_audit(AuditMode::Strict)
    .with_faults(faults)
    .run();
    let audit = r.audit.expect("audit enabled");
    assert_eq!(audit.total_violations(), 0, "{}", audit.render());
    assert_eq!(r.telemetry.counter("fault.stalls"), 1);
    assert!(r.telemetry.gauge("fault.stall_secs").unwrap_or(0.0) > 0.0);
    assert!(r.sim_time > clean.sim_time, "faults did not slow the run down");
}

#[test]
fn fault_trace_and_metrics_surface_through_result() {
    use het_gmp::telemetry::{names, TraceCollector, TraceLevel, TraceTrack};
    let data = generate(&DatasetSpec::tiny());
    let tracer = Arc::new(TraceCollector::new(2, TraceLevel::Sync));
    let faults = Arc::new(
        FaultSchedule::parse("stall@0:0.0:0.002; crash@1:0.000001", 2, 42).unwrap(),
    );
    let r = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(100),
        fault_config(),
    )
    .with_tracer(Arc::clone(&tracer))
    .with_faults(faults)
    .run();
    assert_eq!(r.telemetry.counter(names::FAULT_CRASHES), 1);
    assert_eq!(r.telemetry.counter(names::FAULT_STALLS), 1);
    assert!(r.telemetry.gauge(names::FAULT_RECOVERY_SECS).unwrap_or(0.0) > 0.0);
    let events = tracer.events();
    assert!(events
        .iter()
        .any(|e| e.track == TraceTrack::Worker(0) && e.name == names::TRACE_FAULT_STALL));
    assert!(events
        .iter()
        .any(|e| e.track == TraceTrack::Worker(1) && e.name == names::TRACE_FAULT_CRASH));
    assert!(events
        .iter()
        .any(|e| e.track == TraceTrack::Worker(1) && e.name == names::TRACE_FAULT_RECOVERY));
}

#[test]
fn crashed_peer_mailbox_degrades_to_errors_not_panics() {
    // Regression: the fault injector drops a crashed worker's p2p endpoint
    // mid-run. Survivors gossiping over the network used to panic on the
    // poisoned channel; they must instead get a typed comms error on sends
    // to the dead peer, keep exchanging among themselves, and be able to
    // tell "nothing queued" from "peer gone forever".
    use het_gmp::comms::{P2pNetwork, RecvState};
    use het_gmp::telemetry::HetGmpError;

    let n = 3;
    let faults = Arc::new(FaultSchedule::parse("crash@*:0.5", n, 7).unwrap());
    assert!(faults.has_crashes());
    let victim = (0..n)
        .find(|&w| !faults.worker_faults(w).is_empty())
        .expect("the schedule picked a victim");
    let mut boxes: Vec<Option<_>> =
        P2pNetwork::create::<u64>(n).into_iter().map(Some).collect();

    // Pre-crash: a full gossip round works, victim included.
    for (src, slot) in boxes.iter().enumerate() {
        let b = slot.as_ref().unwrap();
        for dst in 0..n {
            b.send(dst, (src * 10 + dst) as u64).unwrap();
        }
    }
    for b in boxes.iter().flatten() {
        for _ in 0..n {
            b.recv().unwrap();
        }
    }

    // The crash fires: the victim's endpoint (receiver + sender clones) is
    // dropped, exactly what the injector does to a dead worker.
    boxes[victim] = None;

    for (src, slot) in boxes.iter().enumerate() {
        let Some(b) = slot.as_ref() else { continue };
        // Sends to the dead peer fail with a typed error, not a panic.
        let err = b.send(victim, 99).unwrap_err();
        assert!(matches!(err, HetGmpError::Comms { .. }), "{err}");
        // Gossip among survivors still flows.
        for dst in (0..n).filter(|&d| d != victim) {
            b.send(dst, (src * 10 + dst) as u64).unwrap();
        }
    }
    for b in boxes.iter().flatten() {
        let mut got = 0;
        loop {
            match b.try_recv() {
                RecvState::Msg(src, _) => {
                    assert_ne!(src, victim, "a dead worker spoke");
                    got += 1;
                }
                // Survivors hold live senders, so a drained mailbox reads
                // Empty — Disconnected would wrongly end the gossip loop.
                RecvState::Empty => break,
                RecvState::Disconnected => panic!("survivor network reported shut down"),
            }
        }
        assert_eq!(got, n - 1, "a survivor missed peer messages");
    }
}
