//! End-to-end tests of the run manifest and the `het-gmp inspect`
//! subcommand: every artifact writer (telemetry JSONL, Chrome trace,
//! bench JSON) stamps a manifest that parses back to the same struct, the
//! three inspect modes render from real CLI output, and `inspect diff`
//! exits non-zero on an injected regression while warning loudly when two
//! runs' configurations disagree.

use std::path::PathBuf;
use std::process::Command;

use het_gmp::inspect::{diff_artifacts, Artifact, DiffOptions};
use het_gmp::telemetry::{Json, RunManifest};

fn het_gmp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_het-gmp"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetgmp-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One tiny fixed-seed training run writing both artifact kinds.
fn train_with_artifacts(dir: &std::path::Path, seed: u64) -> (PathBuf, PathBuf) {
    let jsonl = dir.join(format!("run-{seed}.jsonl"));
    let trace = dir.join(format!("run-{seed}.trace.json"));
    let out = het_gmp()
        .args([
            "train", "--preset", "tiny", "--workers", "2", "--epochs", "1",
            "--seed", &seed.to_string(), "--pipeline-depth", "2",
            "--telemetry", jsonl.to_str().unwrap(),
            "--trace", trace.to_str().unwrap(), "--trace-level", "sync",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    (jsonl, trace)
}

/// The same run's telemetry JSONL (first record) and Chrome trace
/// (`otherData.manifest`) carry byte-identical manifests, and both parse
/// back through `RunManifest::from_json` / `Artifact::manifest`.
#[test]
fn manifest_round_trips_through_telemetry_and_trace_writers() {
    let dir = scratch_dir("manifest-rt");
    let (jsonl, trace) = train_with_artifacts(&dir, 7);

    // Telemetry JSONL: the manifest is the first record, before any epoch.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let first = text.lines().next().expect("at least one record");
    assert!(first.contains(r#""event":"manifest""#), "{first}");
    let record = Json::parse(first).expect("first record parses");
    let from_record = RunManifest::from_json(record.get("manifest").expect("manifest member"))
        .expect("manifest fields parse");
    assert_eq!(from_record.seed, 7);
    assert_eq!(from_record.workers, 2);
    assert_eq!(from_record.pipeline_depth, 2);
    assert!(!from_record.config_digest.is_empty(), "empty config digest");
    assert!(!from_record.build_profile.is_empty(), "empty build profile");

    // The artifact loader surfaces the identical struct from both files.
    let tele = Artifact::load(&jsonl).unwrap();
    assert_eq!(tele.manifest(), Some(&from_record), "loader disagrees with raw record");
    let chrome = Artifact::load(&trace).unwrap();
    assert_eq!(
        chrome.manifest(),
        Some(&from_record),
        "trace otherData.manifest diverged from the telemetry manifest"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Bench documents carry the same top-level manifest shape: the committed
/// baselines parse, and a manifest embedded in a fresh document round-trips
/// to an equal struct.
#[test]
fn manifest_round_trips_through_bench_documents() {
    // In-memory round-trip through the Document path (the BENCH_*.json
    // writer shape: a top-level "manifest" member).
    let m = RunManifest::new(42, RunManifest::digest_of("dim=8|hidden=16"), 4, 2, 1);
    let doc = Json::obj([
        ("manifest", m.to_json()),
        ("end_to_end", Json::obj([("samples_per_sec", Json::F64(1000.0))])),
    ]);
    let artifact = Artifact::parse(&doc.render()).expect("document parses");
    assert_eq!(artifact.manifest(), Some(&m), "document round-trip changed the manifest");

    // The committed perf baselines are stamped too (tests run from the
    // workspace root, where the BENCH files live).
    for committed in ["BENCH_hotpath.json", "BENCH_dense.json", "BENCH_pipeline.json"] {
        let artifact = Artifact::load(committed).unwrap();
        let m = artifact
            .manifest()
            .unwrap_or_else(|| panic!("{committed} has no parseable run manifest"));
        assert!(m.workers > 0, "{committed}: zero workers in manifest");
        assert_eq!(m.config_digest.len(), 16, "{committed}: digest is not 16 hex chars");
    }
}

/// `inspect report` and `inspect pipeline` render their headline sections
/// from real CLI artifacts.
#[test]
fn inspect_report_and_pipeline_render_cli_artifacts() {
    let dir = scratch_dir("inspect-render");
    let (jsonl, trace) = train_with_artifacts(&dir, 7);

    let out = het_gmp()
        .args(["inspect", "report", jsonl.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("manifest: seed=7"), "{text}");
    assert!(text.contains("traffic breakdown (Fig. 8)"), "{text}");
    assert!(text.contains("embed_data"), "{text}");
    assert!(text.contains("simulated time breakdown"), "{text}");

    let out = het_gmp()
        .args(["inspect", "pipeline", trace.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("timeline:"), "{text}");
    assert!(text.contains("workers/worker 0"), "{text}");
    assert!(text.contains("stage occupancy"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `inspect diff` is quiet on a self-compare and exits 1 (not a sysexits
/// error code) when a metric regresses beyond the threshold.
#[test]
fn inspect_diff_exit_codes_self_clean_regression_loud() {
    let dir = scratch_dir("inspect-diff");
    let (jsonl, _) = train_with_artifacts(&dir, 7);

    let out = het_gmp()
        .args(["inspect", "diff", jsonl.to_str().unwrap(), jsonl.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // Inject a throughput collapse into a copy of the final snapshot.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert!(text.contains(r#""auc":"#), "fixture lost its auc field");
    let regressed = dir.join("regressed.jsonl");
    let mut doctored = String::new();
    for line in text.lines() {
        let mut line = line.to_string();
        if let Some(pos) = line.find(r#""auc":"#) {
            let end = line[pos + 6..]
                .find([',', '}'])
                .map(|i| pos + 6 + i)
                .unwrap();
            line.replace_range(pos + 6..end, "0.01");
        }
        doctored.push_str(&line);
        doctored.push('\n');
    }
    std::fs::write(&regressed, doctored).unwrap();

    let out = het_gmp()
        .args(["inspect", "diff", jsonl.to_str().unwrap(), regressed.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("REGRESSION"), "{report}");
    assert!(report.contains("auc"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Two runs differing only in seed trigger the manifest-mismatch warning —
/// on the library `DiffOutcome` and on the CLI's stderr.
#[test]
fn inspect_diff_warns_on_two_seed_manifest_mismatch() {
    let dir = scratch_dir("inspect-seeds");
    let (a, _) = train_with_artifacts(&dir, 7);
    let (b, _) = train_with_artifacts(&dir, 8);

    let outcome = diff_artifacts(
        &Artifact::load(&a).unwrap(),
        &Artifact::load(&b).unwrap(),
        &DiffOptions::default(),
    )
    .unwrap();
    let warning = outcome.manifest_warning.expect("seed mismatch must warn");
    assert!(warning.contains("seed"), "{warning}");

    let out = het_gmp()
        .args(["inspect", "diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("spawn");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("WARNING") && err.contains("seed"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Usage and data errors from `inspect` keep the sysexits convention
/// (distinct from the regression exit code 1).
#[test]
fn inspect_error_paths_follow_sysexits() {
    let out = het_gmp().args(["inspect", "frobnicate", "x"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "unknown mode is a usage error");

    let out = het_gmp()
        .args(["inspect", "report", "/nonexistent/run.jsonl"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(74), "missing file is an I/O error");
}
