//! Cross-crate property tests: partition/table/protocol invariants under
//! randomly generated workloads.

use het_gmp::bigraph::Bigraph;
use het_gmp::embedding::{ShardedTable, SparseOpt, StalenessBound, WorkerEmbedding};
use het_gmp::partition::{
    bicut_partition, random_partition, HybridConfig, HybridPartitioner, PartitionMetrics,
    ReplicationBudget,
};
use proptest::prelude::*;

/// Strategy: a random small bigraph as per-sample field lists.
fn bigraph_strategy() -> impl Strategy<Value = Bigraph> {
    (2usize..40, 4u32..60).prop_flat_map(|(samples, vocab)| {
        prop::collection::vec(
            prop::collection::vec(0..vocab, 1..6),
            samples..=samples,
        )
        .prop_map(move |rows| Bigraph::from_samples(vocab as usize, &rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hybrid_partition_invariants(g in bigraph_strategy(), n in 2usize..6) {
        let (part, _) = HybridPartitioner::new(HybridConfig {
            replication: Some(ReplicationBudget::FractionOfEmbeddings(0.1)),
            ..Default::default()
        })
        .partition_rounds(&g, n);
        prop_assert!(part.validate(&g).is_ok());
        prop_assert_eq!(part.num_partitions(), n);
        // Every embedding has exactly one primary and >= 1 replica.
        for e in 0..g.num_embeddings() as u32 {
            prop_assert!(part.replica_count(e) >= 1);
            prop_assert!((part.primary_of(e) as usize) < n);
        }
        // Replication budget respected: secondaries per partition at most
        // floor(0.1 * embeddings).
        let budget = (g.num_embeddings() as f64 * 0.1).floor() as usize;
        let primaries = part.primaries_per_partition();
        let replicas = part.replicas_per_partition();
        for k in 0..n {
            prop_assert!(replicas[k] - primaries[k] <= budget,
                "partition {k}: {} secondaries > budget {budget}",
                replicas[k] - primaries[k]);
        }
    }

    #[test]
    fn hybrid_never_worse_than_its_random_init(g in bigraph_strategy(), n in 2usize..6) {
        let seed = 0x9E7; // HybridConfig::default().seed
        let random = random_partition(&g, n, seed);
        let random_m = PartitionMetrics::compute(&g, &random, None);
        let (part, _) = HybridPartitioner::new(HybridConfig {
            replication: None,
            ..Default::default()
        })
        .partition_rounds(&g, n);
        let ours = PartitionMetrics::compute(&g, &part, None);
        prop_assert!(ours.remote_fetches <= random_m.remote_fetches,
            "hybrid {} worse than random {}", ours.remote_fetches, random_m.remote_fetches);
    }

    #[test]
    fn bicut_balances_samples(g in bigraph_strategy(), n in 2usize..6) {
        let part = bicut_partition(&g, n);
        prop_assert!(part.validate(&g).is_ok());
        let counts = part.samples_per_partition();
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "round-robin must be exactly even: {counts:?}");
    }

    #[test]
    fn s_zero_read_equals_primary(g in bigraph_strategy(), updates in 0u32..20) {
        // Build a 2-partition layout with full replication, apply foreign
        // updates, and check s=0 reads always equal the primary.
        let n = 2;
        let mut part = random_partition(&g, n, 11);
        for e in 0..g.num_embeddings() as u32 {
            part.add_replica(e, 0);
            part.add_replica(e, 1);
        }
        let dim = 2;
        let table = ShardedTable::new(g.num_embeddings(), dim, 0.0, 5);
        let freq: Vec<u64> = (0..g.num_embeddings() as u32)
            .map(|e| g.emb_frequency(e) as u64)
            .collect();
        let opt = SparseOpt::sgd(0.5);
        for u in 0..updates {
            table.apply_grad(u % g.num_embeddings() as u32, &[1.0, -1.0], &opt);
        }
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(0));
        let ids: Vec<u32> = (0..g.num_embeddings() as u32).collect();
        let samples: Vec<&[u32]> = vec![&ids];
        let mut out = vec![0.0f32; ids.len() * dim];
        w0.read_batch(&samples, &mut out);
        let mut row = vec![0.0f32; dim];
        for (i, &e) in ids.iter().enumerate() {
            table.read_row(e, &mut row);
            prop_assert_eq!(&out[i * dim..(i + 1) * dim], &row[..]);
        }
    }

    #[test]
    fn traffic_monotone_in_staleness(g in bigraph_strategy()) {
        // Reading the same workload with a looser bound never produces more
        // sync traffic.
        let n = 2;
        let mut part = random_partition(&g, n, 3);
        for e in 0..g.num_embeddings() as u32 {
            part.add_replica(e, 0);
        }
        let dim = 2;
        let freq: Vec<u64> = (0..g.num_embeddings() as u32)
            .map(|e| g.emb_frequency(e) as u64)
            .collect();
        let opt = SparseOpt::sgd(0.1);
        let mut bytes = Vec::new();
        for s in [0u64, 4, 1 << 40] {
            let table = ShardedTable::new(g.num_embeddings(), dim, 0.0, 5);
            for e in 0..g.num_embeddings() as u32 {
                table.apply_grad(e, &[1.0, 0.0], &opt);
                table.apply_grad(e, &[1.0, 0.0], &opt);
            }
            let mut w0 =
                WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(s));
            // Warm-load happens at construction (fresh), so force staleness:
            for e in 0..g.num_embeddings() as u32 {
                table.apply_grad(e, &[1.0, 0.0], &opt);
            }
            let mut total = 0u64;
            for sample in 0..g.num_samples() as u32 {
                let fields = g.embeddings_of(sample);
                if fields.is_empty() {
                    continue;
                }
                let samples: Vec<&[u32]> = vec![fields];
                let mut out = vec![0.0f32; fields.len() * dim];
                let r = w0.read_batch(&samples, &mut out);
                total += r.data_bytes;
            }
            bytes.push(total);
        }
        prop_assert!(bytes[0] >= bytes[1], "s=0 {} < s=4 {}", bytes[0], bytes[1]);
        prop_assert!(bytes[1] >= bytes[2], "s=4 {} < s=inf {}", bytes[1], bytes[2]);
    }
}
