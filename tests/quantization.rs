//! Wire-format (`SyncFormat`) integration tests: pipeline-depth invariance
//! and resume determinism of lossy formats, the error-feedback convergence
//! contract, and the end-to-end bytes-vs-quality trade the compressed path
//! exists for. The `--sync-format f32` bit-identity pin lives next to the
//! seed-sweep goldens in `tests/convergence.rs`.

use het_gmp::cluster::Topology;
use het_gmp::comms::SyncFormat;
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};
use het_gmp::embedding::{ShardedTable, SparseOpt, StalenessBound, WorkerEmbedding};
use het_gmp::partition::Partition;
use het_gmp::telemetry::AuditMode;

fn dataset() -> het_gmp::data::CtrDataset {
    let mut spec = DatasetSpec::avazu_like(0.03);
    spec.cluster_affinity = 0.9;
    generate(&spec)
}

fn quant_config(format: SyncFormat) -> TrainerConfig {
    TrainerConfig {
        epochs: 2,
        dim: 8,
        batch_size: 128,
        hidden: vec![16],
        sync_format: format,
        ..Default::default()
    }
}

#[test]
fn int8_results_are_invariant_across_pipeline_depths() {
    // The transport happens at fixed protocol points (replica syncs,
    // write-backs, the dense collective), never at a pipeline boundary —
    // so deepening the pipeline must not move a single bit of the result.
    let data = dataset();
    let run = |depth: usize| {
        Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            quant_config(SyncFormat::Int8),
        )
        .with_pipeline(Some(depth), None)
        .run()
    };
    let d1 = run(1);
    let d2 = run(2);
    let d3 = run(3);
    for (label, r) in [("depth 2", &d2), ("depth 3", &d3)] {
        assert_eq!(d1.final_auc, r.final_auc, "{label}: AUC moved");
        assert_eq!(
            d1.curve.last().unwrap().train_loss,
            r.curve.last().unwrap().train_loss,
            "{label}: loss moved"
        );
        assert_eq!(
            d1.telemetry.counter("traffic.bytes.embed_data"),
            r.telemetry.counter("traffic.bytes.embed_data"),
            "{label}: traffic moved"
        );
    }
}

#[test]
fn int8_checkpoint_resume_is_deterministic() {
    // Checkpoints stay f32 (lossless at rest); error-feedback residuals
    // reset at the epoch barrier the checkpoint captures, so a resumed
    // int8 run replays epoch 2 exactly as another resumed run does.
    let dir = std::env::temp_dir().join(format!("hetgmp-it-quant-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = dataset();
    let full = Trainer::new(
        &data,
        Topology::pcie_island(2),
        StrategyConfig::het_gmp(0),
        TrainerConfig {
            checkpoint_every: 1,
            checkpoint_dir: Some(dir.clone()),
            ..quant_config(SyncFormat::Int8)
        },
    )
    .run();
    let resume = || {
        Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(0),
            TrainerConfig {
                resume_from: Some(dir.join("ckpt-epoch-1.hgmr")),
                ..quant_config(SyncFormat::Int8)
            },
        )
        .run()
    };
    let a = resume();
    let b = resume();
    assert_eq!(a.curve.len(), 1);
    assert_eq!(
        a.final_auc, b.final_auc,
        "two identical int8 resumes diverged: {} vs {}",
        a.final_auc, b.final_auc
    );
    assert!(
        (a.final_auc - full.final_auc).abs() < 0.01,
        "int8 resume drifted from the uninterrupted run: {} vs {}",
        a.final_auc,
        full.final_auc
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn error_feedback_recovers_subquantization_gradients() {
    // The deterministic convergence contract behind the BENCH_comms AUC
    // band. With mixed-magnitude gradients the int8 quantization step
    // (max|g|/127 ≈ 0.0079 here) swallows the small coordinate outright:
    // round-to-nearest-even maps 0.002 to bucket 0 on every push, so
    // without feedback that coordinate of the shared row NEVER moves and
    // the trajectory diverges from f32 by the full accumulated update.
    // With feedback the swallowed residual carries over and is emitted
    // every few pushes, keeping the row within one quantization step of
    // the f32 trajectory.
    let steps = 200;
    let grad = vec![0.002f32, 1.0];
    let trajectory = |format: SyncFormat, feedback: bool| -> Vec<f32> {
        // 2 workers, 4 embeddings (dim 2), primaries 0,1 / 2,3 — worker 0
        // pushes to remote primary 2 through its secondary replica, s = 0
        // so every push crosses the wire immediately.
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let mut part = Partition::new(2, vec![0, 1], vec![0, 0, 1, 1]);
        part.add_replica(2, 0);
        let freq = vec![10, 5, 10, 5];
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(0));
        w0.set_sync_format(format, feedback);
        let samples: Vec<&[u32]> = vec![&[2]];
        let opt = SparseOpt::sgd(0.1);
        for _ in 0..steps {
            w0.apply_gradients(&samples, &grad, &opt);
        }
        let mut row = vec![0.0; 2];
        table.read_row(2, &mut row);
        row
    };
    let exact = trajectory(SyncFormat::F32, true);
    let ef = trajectory(SyncFormat::Int8, true);
    let no_ef = trajectory(SyncFormat::Int8, false);
    // f32 reference: row -= lr·g per push → [−0.04, −20].
    assert!((exact[0] + 0.04).abs() < 1e-4, "f32 reference off: {exact:?}");
    // The dominant coordinate converges under every variant.
    assert!((ef[1] - exact[1]).abs() < 0.05, "{ef:?} vs {exact:?}");
    assert!((no_ef[1] - exact[1]).abs() < 0.05, "{no_ef:?} vs {exact:?}");
    // The sub-step coordinate: feedback tracks f32 to within one emitted
    // quantization step (·lr), no-feedback never moves it at all.
    let ef_err = (ef[0] - exact[0]).abs();
    let no_ef_err = (no_ef[0] - exact[0]).abs();
    assert!(ef_err < 0.004, "feedback lost the small coordinate: {ef:?} vs {exact:?}");
    assert!(no_ef[0].abs() < 1e-6, "without feedback the coordinate moved: {no_ef:?}");
    assert!(
        no_ef_err > 10.0 * ef_err.max(1e-6),
        "feedback is not measurably better: {ef_err} vs {no_ef_err}"
    );
}

#[test]
fn int8_trades_bytes_for_negligible_quality_end_to_end() {
    // End-to-end form of the BENCH_comms contract at test scale: int8
    // slashes embedding-payload bytes (8·1 + 4 vs 8·4 per row at dim 8)
    // while final AUC stays near f32's. The band here is looser than the
    // benchmark's 0.5% — a 2-epoch, 3%-scale run has more stochastic
    // wobble than the pinned sweep — but tight enough to catch a broken
    // decoder (which costs tens of points, not fractions).
    let data = dataset();
    let run = |format| {
        Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            quant_config(format),
        )
        .with_audit(AuditMode::Count)
        .run()
    };
    let full = run(SyncFormat::F32);
    let q = run(SyncFormat::Int8);
    let audit = q.audit.expect("audit enabled");
    assert_eq!(audit.total_violations(), 0, "{}", audit.render());
    assert!(
        (q.final_auc - full.final_auc).abs() < 0.02,
        "int8 lost too much quality: {} vs {}",
        q.final_auc,
        full.final_auc
    );
    let fb = full.telemetry.counter("traffic.bytes.embed_data");
    let qb = q.telemetry.counter("traffic.bytes.embed_data");
    assert!(fb > 0, "f32 run moved no embedding bytes");
    let reduction = fb as f64 / qb.max(1) as f64;
    assert!(
        reduction >= 2.5,
        "int8 reduction {reduction:.2}x below the dim-8 structural ratio (32/12)"
    );
    // Lossless runs must not meter quantized rows; lossy runs must.
    assert_eq!(full.telemetry.counter("comms.quant.rows"), 0);
    assert!(q.telemetry.counter("comms.quant.rows") > 0);
    assert!(q.telemetry.counter("comms.quant.bytes_saved") > 0);
}
