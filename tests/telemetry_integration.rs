//! Cross-crate telemetry integration: the unified snapshot and the legacy
//! `TrafficLedger` interface must report identical per-class byte totals,
//! end to end through a real training run, and the JSONL export must carry
//! those exact numbers.

use het_gmp::cluster::Topology;
use het_gmp::comms::{TrafficClass, TrafficLedger};
use het_gmp::core::strategy::StrategyConfig;
use het_gmp::core::trainer::{Trainer, TrainerConfig};
use het_gmp::data::{generate, DatasetSpec};
use het_gmp::telemetry::{Json, JsonlWriter, MetricsRegistry};

fn fixed_seed_result() -> het_gmp::core::trainer::TrainResult {
    let mut spec = DatasetSpec::tiny();
    spec.num_samples = 512;
    let data = generate(&spec);
    let cfg = TrainerConfig::builder()
        .dim(8)
        .hidden(vec![16])
        .batch_size(64)
        .epochs(1)
        .seed(1234)
        .build()
        .unwrap();
    Trainer::new(&data, Topology::pcie_island(4), StrategyConfig::het_gmp(10), cfg).run()
}

/// The Figure 8 parity check: `TrainResult::traffic_bytes` is produced by
/// the legacy `TrafficLedger` interface, while `TrainResult::telemetry` is
/// the merged recorder snapshot — the per-class byte totals must agree
/// exactly on the same run.
#[test]
fn fig8_traffic_classes_agree_between_snapshot_and_ledger() {
    let r = fixed_seed_result();
    for (i, class) in TrafficClass::all().into_iter().enumerate() {
        assert_eq!(
            r.telemetry.counter(class.bytes_metric()),
            r.traffic_bytes[i],
            "class {} diverged between snapshot and ledger",
            class.label()
        );
    }
    // A 4-worker partitioned run genuinely moves embedding bytes — the
    // equality above is not vacuous.
    assert!(r.traffic_bytes[0] > 0, "no embedding traffic recorded");
    assert!(r.traffic_bytes[2] > 0, "no all-reduce traffic recorded");
}

/// Recording through the façade and reading back through the registry (or
/// vice versa) is the same data: `TrafficLedger::from_registry` shares the
/// registry's recorders rather than keeping its own cells.
#[test]
fn ledger_facade_shares_registry_counters() {
    let registry = MetricsRegistry::new(2);
    let ledger = TrafficLedger::from_registry(&registry);
    ledger.record(0, TrafficClass::EmbedData, 640, 10);
    ledger.record(1, TrafficClass::EmbedData, 360, 5);
    ledger.record(1, TrafficClass::AllReduce, 128, 1);

    let snap = registry.snapshot();
    assert_eq!(snap.counter(TrafficClass::EmbedData.bytes_metric()), 1000);
    assert_eq!(snap.counter(TrafficClass::EmbedData.messages_metric()), 15);
    assert_eq!(snap.counter(TrafficClass::AllReduce.bytes_metric()), 128);
    assert_eq!(ledger.total_bytes(TrafficClass::EmbedData), 1000);
    assert_eq!(ledger.grand_total_bytes(), 1128);
}

/// The JSONL export carries the exact per-class byte totals (the
/// acceptance path for `train --telemetry out.jsonl`).
#[test]
fn jsonl_export_carries_exact_traffic_totals() {
    let r = fixed_seed_result();
    let dir = std::env::temp_dir().join(format!("hetgmp-tele-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.jsonl");

    let mut w = JsonlWriter::create(&path).unwrap();
    w.write_snapshot("final", &[("auc", Json::F64(r.final_auc))], &r.telemetry)
        .unwrap();
    w.flush().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let line = text.lines().next().expect("one record");
    assert!(line.starts_with(r#"{"event":"final""#), "{line}");
    for (i, class) in TrafficClass::all().into_iter().enumerate() {
        let needle = format!(r#""{}":{}"#, class.bytes_metric(), r.traffic_bytes[i]);
        assert!(line.contains(&needle), "missing {needle} in {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
