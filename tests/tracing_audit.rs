//! End-to-end tests of the tracing + auditing surface: the `--trace` /
//! `--trace-level` / `--audit` CLI flags, the Chrome trace-event export
//! schema, and the experiment runners' audited JSONL records.

use std::path::PathBuf;
use std::process::Command;

fn het_gmp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_het-gmp"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetgmp-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `train --trace` writes a well-formed Chrome trace-event JSON with one
/// thread track per worker, link-class tracks, and the driver track.
#[test]
fn train_trace_flag_writes_chrome_trace_schema() {
    let dir = scratch_dir("trace");
    let trace = dir.join("out.trace.json");

    let out = het_gmp()
        .args([
            "train", "--preset", "tiny", "--workers", "2", "--epochs", "1",
            "--trace", trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("trace: "),
        "trace path not reported"
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    // One JSON object, balanced braces/brackets (the workspace serializer
    // has its own unit tests; here we pin the envelope and the tracks).
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches('[').count(), text.matches(']').count());
    assert!(text.contains(r#""traceEvents""#), "missing traceEvents envelope");

    // Track metadata: both worker threads, at least one link class, driver.
    assert!(text.contains(r#""worker 0""#), "missing worker 0 track");
    assert!(text.contains(r#""worker 1""#), "missing worker 1 track");
    assert!(text.contains(r#""link "#), "missing link-class track");
    assert!(text.contains(r#""driver""#), "missing driver track");

    // Span events with timestamps and the core span names.
    assert!(text.contains(r#""ph":"X""#), "no complete-span events");
    assert!(text.contains(r#""ts":"#), "no timestamps");
    assert!(text.contains("trace.batch"), "no batch spans");
    assert!(text.contains("trace.epoch"), "no epoch spans");
    assert!(text.contains("trace.partition.round"), "no partitioner spans");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--trace -` streams the trace JSON to stdout; `--trace-level sync`
/// additionally captures per-read instants.
#[test]
fn trace_to_stdout_with_sync_level_instants() {
    let out = het_gmp()
        .args([
            "train", "--preset", "tiny", "--workers", "2", "--epochs", "1",
            "--trace", "-", "--trace-level", "sync",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(r#""traceEvents""#), "{text}");
    // Sync level: instant events (ph "i") for protocol decisions.
    assert!(text.contains(r#""ph":"i""#), "no instant events at sync level");
    assert!(text.contains("trace.read"), "no read-mix instants");
}

/// Unknown trace levels and audit modes are usage errors (exit 2).
#[test]
fn trace_and_audit_flags_validate() {
    let out = het_gmp()
        .args([
            "train", "--preset", "tiny", "--trace", "-", "--trace-level", "verbose",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace level"));

    let out = het_gmp()
        .args(["train", "--preset", "tiny", "--audit=paranoid"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown audit mode"));
}

/// BSP (`--staleness 0`) under the strict auditor: a correct protocol
/// serves no read staler than the bound, so the run completes with zero
/// violations and exit 0.
#[test]
fn strict_audit_bsp_run_reports_zero_violations() {
    let out = het_gmp()
        .args([
            "train", "--preset", "tiny", "--workers", "2", "--epochs", "1",
            "--staleness", "0", "--audit=strict",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("audit: bound=0"), "{text}");
    assert!(text.contains("violations=0"), "{text}");
    assert!(!text.contains("STRICT FAILURE"), "{text}");
}

/// The experiment runners emit audited JSONL records with the documented
/// event names: `ablation.staleness` snapshots carry an `audit` object,
/// `ablation.replication` rows are plain records.
#[test]
fn experiment_ablation_jsonl_event_shapes() {
    let dir = scratch_dir("abl-jsonl");
    let tele = dir.join("out.jsonl");

    let out = het_gmp()
        .args([
            "experiment", "ablation", "--scale", "0.02",
            "--telemetry", tele.to_str().unwrap(), "--audit",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&tele).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let staleness: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains(r#""event":"ablation.staleness""#))
        .collect();
    assert_eq!(staleness.len(), 4, "one record per s value:\n{text}");
    for l in &staleness {
        assert!(l.contains(r#""staleness":"#), "{l}");
        assert!(l.contains(r#""throughput":"#), "{l}");
        assert!(l.contains(r#""audit":"#), "audited run lacks audit object: {l}");
        assert!(l.contains(r#""intra_violations":0"#), "{l}");
        assert!(l.contains(r#""counters":"#), "snapshot missing: {l}");
    }
    let replication: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains(r#""event":"ablation.replication""#))
        .collect();
    assert_eq!(replication.len(), 5, "one record per budget:\n{text}");
    for l in &replication {
        assert!(l.contains(r#""budget_fraction":"#), "{l}");
        assert!(l.contains(r#""remote_fetches":"#), "{l}");
        assert!(l.contains(r#""replication_factor":"#), "{l}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Figure 8's runner at smoke scale: every `fig8` record names its
/// workload and setting, audited runs carry the audit object, and a
/// shared trace collector accumulates spans across all runs.
#[test]
fn experiment_fig8_jsonl_and_trace() {
    let dir = scratch_dir("fig8-jsonl");
    let tele = dir.join("out.jsonl");
    let trace = dir.join("out.trace.json");

    let out = het_gmp()
        .args([
            "experiment", "fig8", "--scale", "0.01",
            "--telemetry", tele.to_str().unwrap(),
            "--audit", "--trace", trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&tele).unwrap();
    let fig8: Vec<&str> = text
        .lines()
        .filter(|l| l.contains(r#""event":"fig8""#))
        .collect();
    // 2 models x 3 datasets x 4 settings.
    assert_eq!(fig8.len(), 24, "{text}");
    for l in &fig8 {
        assert!(l.contains(r#""workload":"#), "{l}");
        assert!(l.contains(r#""setting":"#), "{l}");
        assert!(l.contains(r#""audit":"#), "{l}");
    }

    // All 24 runs share one collector; the export still has the envelope
    // and worker tracks.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.contains(r#""traceEvents""#));
    assert!(trace_text.contains(r#""worker 0""#));
    assert!(trace_text.contains("trace.epoch"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Table 2's runner at smoke scale emits one audited `table2` record per
/// dataset x staleness cell.
#[test]
fn experiment_table2_jsonl_event_shapes() {
    let dir = scratch_dir("table2-jsonl");
    let tele = dir.join("out.jsonl");

    let out = het_gmp()
        .args([
            "experiment", "table2", "--scale", "0.01",
            "--telemetry", tele.to_str().unwrap(), "--audit",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&tele).unwrap();
    let table2: Vec<&str> = text
        .lines()
        .filter(|l| l.contains(r#""event":"table2""#))
        .collect();
    // 3 datasets x 4 staleness settings.
    assert_eq!(table2.len(), 12, "{text}");
    for l in &table2 {
        assert!(l.contains(r#""dataset":"#), "{l}");
        assert!(l.contains(r#""staleness":"#), "{l}");
        assert!(l.contains(r#""auc":"#), "{l}");
        assert!(l.contains(r#""audit":"#), "{l}");
        // The auditor never sees a served read above the bound, even at
        // s=inf (where the bound admits everything).
        assert!(l.contains(r#""intra_violations":0"#), "{l}");
        assert!(l.contains(r#""inter_violations":0"#), "{l}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A collector that recorded no spans still exports a *valid* Chrome
/// trace: the traceEvents array holds only process/thread metadata (no
/// "X" events), otherData carries the attached manifest, and the inspect
/// gantt renderer recognises the metadata-only shape rather than erroring.
#[test]
fn empty_trace_export_is_valid_metadata_only_chrome_json() {
    use het_gmp::inspect::{render_gantt, Artifact};
    use het_gmp::telemetry::{RunManifest, TraceCollector, TraceLevel};

    let dir = scratch_dir("empty-trace");
    let path = dir.join("empty.trace.json");

    let collector = TraceCollector::new(2, TraceLevel::Batch);
    collector.attach_manifest(RunManifest::new(5, RunManifest::digest_of("x"), 2, 1, 1));
    collector.write_chrome_trace(path.to_str().unwrap()).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains(r#""traceEvents""#), "{text}");
    assert_eq!(text.matches('{').count(), text.matches('}').count(), "{text}");
    assert!(text.contains(r#""ph":"M""#), "metadata events missing: {text}");
    assert!(!text.contains(r#""ph":"X""#), "span events in an empty trace: {text}");

    let artifact = Artifact::load(&path).unwrap();
    assert_eq!(artifact.manifest().map(|m| m.seed), Some(5));
    let gantt = render_gantt(&artifact).unwrap();
    assert!(gantt.contains("metadata-only"), "{gantt}");

    std::fs::remove_dir_all(&dir).ok();
}
