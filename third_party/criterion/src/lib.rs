//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the same macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`]) but measures with
//! a simple calibrated wall-clock loop instead of criterion's statistical
//! machinery. In test mode (`cargo test` runs harness-less bench binaries
//! with `--test`) each benchmark body executes once as a smoke check.

use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Cargo appends `--test` when running a harness=false bench
            // target under `cargo test`; a single smoke iteration is the
            // right behaviour there.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("benchmark group: {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("run", f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its own sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if !self.criterion.test_mode && bencher.iters > 0 {
            let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
            println!(
                "  {}/{name}: {:.3} ms/iter ({} iters)",
                self.name,
                per_iter * 1e3,
                bencher.iters
            );
        }
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Timer handle: runs the closure under measurement.
pub struct Bencher {
    test_mode: bool,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f`. One calibration call sizes the batch so the whole
    /// measurement stays around a few milliseconds; in test mode `f` runs
    /// exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 0;
            return;
        }
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        // Aim for ~5 ms of total measurement, capped to keep huge suites fast.
        let target = Duration::from_millis(5);
        let batch = if first >= target {
            0
        } else {
            let est = (target.as_secs_f64() / first.as_secs_f64().max(1e-9)) as u64;
            est.clamp(1, 1000)
        };
        let batch_start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let total = first + batch_start.elapsed();
        self.elapsed += total;
        self.iters += 1 + batch;
    }
}

/// Opaque identity function preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions (`fn(&mut Criterion)`) into a runnable
/// group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_accumulates_iters() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        group.bench_function("spin", |b| b.iter(|| black_box(3u64).pow(7)));
        group.finish();
    }
}
