//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` subset the workspace uses: [`channel::unbounded`]
//! with cloneable senders, plus [`channel::TryRecvError`]. Backed by
//! `std::sync::mpsc` with the receiver behind a mutex so `Receiver` stays
//! usable from whichever thread holds it (mpsc receivers are `Send` but the
//! crossbeam API also allows sharing; the mutex keeps that contract cheap
//! and obvious).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// Every sender has been dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without requiring `T: Debug`, so
    // `.expect()` works on channels of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel. Cloneable (consumers
    /// share the underlying queue; each message is delivered once).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv().map_err(|_| RecvError)
        }

        /// Drains currently queued messages into an iterator without
        /// blocking once the queue is empty.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        handle.join().unwrap();
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
