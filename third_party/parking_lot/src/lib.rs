//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API (the
//! subset this workspace uses: [`Mutex::lock`], [`RwLock::read`],
//! [`RwLock::write`], [`Condvar::wait`]/[`Condvar::notify_all`]). Poisoned
//! locks unwrap: a panicked worker thread already aborts the training run,
//! so propagating poison adds nothing here.

use std::sync;

/// A mutual-exclusion lock (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified
    /// (parking_lot-style: the guard is re-acquired in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Applies `f` to the owned guard behind `&mut`, temporarily moving it out.
/// std's Condvar::wait consumes the guard; parking_lot's borrows it. If `f`
/// panics (it cannot: waits only return poison, which we strip) the process
/// aborts via the double-panic in the placeholder drop, never exposing an
/// invalid guard.
fn replace_guard<'a, T>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is written back before returning and `f` never
    // unwinds (std's wait only errors on poison, which is unwrapped).
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(r1.len() + r2.len(), 6);
        drop((r1, r2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            42
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(t.join().unwrap(), 42);
    }
}
