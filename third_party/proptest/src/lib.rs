//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`prop::collection::vec`], [`prop::bool::ANY`],
//! [`prop_oneof!`], the [`proptest!`] test macro and the
//! `prop_assert!`/`prop_assert_eq!` assertions, plus
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! ordinary assert message and the case index), and sampling is seeded
//! deterministically from the test name so every run explores the same
//! cases. That keeps failures reproducible without persisted regression
//! files.

/// Number of cases [`proptest!`] runs per property by default.
pub const DEFAULT_CASES: u32 = 256;

/// Per-property configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic RNG used to drive strategies (xoshiro256**).
pub mod test_runner {
    /// Source of randomness handed to [`crate::strategy::Strategy::sample`].
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the RNG from a test name, so each property explores a
        /// fixed, reproducible case sequence.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 to fill the state.
            let mut h: u64 = 0xCBF29CE484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001B3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                *slot = z ^ (z >> 31);
            }
            if s.iter().all(|&x| x == 0) {
                s[0] = 1;
            }
            Self { s }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero. Rejection
        /// sampling keeps the draw unbiased.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }

        /// Uniform f64 in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed strategies; built by [`prop_oneof!`].
    pub struct OneOf<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Wraps the given arms; panics if empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    /// A fixed value, always generated as-is.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

/// Built-in strategy namespaces (`prop::collection`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec`]: an exact size, a half-open
        /// range, or an inclusive range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                Self {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<E::Value>` with length drawn from a
        /// [`SizeRange`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<E> {
            element: E,
            size: SizeRange,
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Generates vectors of values drawn from `element`.
        pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding `true` or `false` with equal probability.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs (default
/// [`DEFAULT_CASES`]; override with `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* } => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let __strats = ( $($strat,)+ );
            for __case in 0..__cfg.cases {
                let ( $($arg,)+ ) =
                    $crate::strategy::Strategy::sample(&__strats, &mut __rng);
                let __run = || $body;
                __run();
                let _ = __case;
            }
        }
    )*};
}

/// Uniform choice among strategies that share one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($arm:expr),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $(Box::new($arm) as Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3u32..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2usize..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u32..100, n..=n)),
            doubled in (0u32..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![0u32..1, 10u32..11, (20u32..21).prop_map(|v| v)]) {
            prop_assert!(x == 0u32 || x == 10u32 || x == 20u32);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
