//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the subset of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — high-quality, fast, and
//! deterministic across platforms (which is all the workspace requires;
//! streams differ from upstream rand's StdRng, but every consumer treats
//! seeds as opaque reproducibility handles, never as golden streams).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` via Lemire-style widening multiply with a
/// rejection pass to kill modulo bias.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..10u32);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let g = r.gen_range(0.5..=0.75f64);
            assert!((0.5..=0.75).contains(&g));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 10k uniforms is close to 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
